package thermal

import (
	"math"
	"math/rand"
	"testing"
)

// randomMesh builds a randomized multi-resolution silicon grid and a coarser
// copper grid, as NewModel's contract requires (tiling, fully covered by the
// spreader).
func randomMesh(rng *rand.Rand) (si, cu []Rect) {
	nx := 3 + rng.Intn(5)
	ny := 3 + rng.Intn(5)
	die := (2 + 4*rng.Float64()) * 1e-3
	si = UniformGrid(die, die, nx, ny)
	// Refine a random subset into 2x2 sub-cells (multi-resolution mesh).
	si = RefineGrid(si, func(Rect) bool { return rng.Float64() < 0.3 })
	cuN := 1 + rng.Intn(3)
	cu = UniformGrid(die, die, cuN, cuN)
	return si, cu
}

// TestDifferentialSerialVsParallel is the correctness gate for the sharded
// solver: for randomized floorplans and randomized power traces, the serial
// (Workers=1) and parallel (Workers=4, forced past the cell threshold)
// solvers must agree per cell to 1e-9 K after 1000 steps. The sharded path
// computes exactly the same per-cell arithmetic, so the agreement is in fact
// bit-exact; the tolerance only guards the test against future refactors.
func TestDifferentialSerialVsParallel(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		si, cu := randomMesh(rng)

		serOpt := DefaultOptions()
		serOpt.Workers = 1
		parOpt := DefaultOptions()
		parOpt.Workers = 4
		parOpt.MinParallelCells = 1 // force the sharded path on small meshes
		if rng.Intn(2) == 0 {
			serOpt.NzSi, parOpt.NzSi = 2, 2
		}

		ser, err := NewModel(si, cu, serOpt)
		if err != nil {
			t.Fatalf("seed %d: serial model: %v", seed, err)
		}
		par, err := NewModel(si, cu, parOpt)
		if err != nil {
			t.Fatalf("seed %d: parallel model: %v", seed, err)
		}
		if par.Workers() != 4 || ser.Workers() != 1 {
			t.Fatalf("seed %d: workers = %d/%d", seed, ser.Workers(), par.Workers())
		}

		pw := make([]float64, ser.NumSurfaceCells())
		for step := 0; step < 1000; step++ {
			if step%50 == 0 { // a new window of the randomized power trace
				for i := range pw {
					pw[i] = 0.05 * rng.Float64()
				}
				if err := ser.SetPowers(pw); err != nil {
					t.Fatal(err)
				}
				if err := par.SetPowers(pw); err != nil {
					t.Fatal(err)
				}
			}
			ser.Step(2e-4)
			par.Step(2e-4)
		}

		st, pt := ser.AllTemps(), par.AllTemps()
		for i := range st {
			if d := math.Abs(st[i] - pt[i]); d > 1e-9 {
				t.Fatalf("seed %d: cell %d diverged by %.3g K (serial %.12f, parallel %.12f)",
					seed, i, d, st[i], pt[i])
			}
		}
		if ser.Time() != par.Time() {
			t.Fatalf("seed %d: time diverged: %v vs %v", seed, ser.Time(), par.Time())
		}
	}
}

// parallelModel builds a model that is forced onto the sharded path.
func parallelModel(t *testing.T, si, cu []Rect, nzSi int) *Model {
	t.Helper()
	opt := DefaultOptions()
	opt.Workers = 4
	opt.MinParallelCells = 1
	opt.NzSi = nzSi
	m, err := NewModel(si, cu, opt)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestParallelEnergyBalance re-asserts global energy balance on the sharded
// path: after integrating long past the package time constant (~1.1 s), the
// injected power equals the convected power.
func TestParallelEnergyBalance(t *testing.T) {
	si := UniformGrid(4e-3, 4e-3, 8, 8)
	cu := UniformGrid(4e-3, 4e-3, 4, 4)
	m := parallelModel(t, si, cu, 1)
	for i := 0; i < m.NumSurfaceCells(); i++ {
		m.SetPower(i, 0.01)
	}
	for i := 0; i < 200; i++ {
		m.Step(0.05) // 10 s total, ~9 package time constants
	}
	in, out := m.TotalPower(), m.ConvectedPower()
	if math.Abs(in-out)/in > 1e-3 {
		t.Errorf("energy balance on sharded path: in %.9f W, convected %.9f W", in, out)
	}
}

// TestParallelMonotoneCooling re-asserts monotone cooling on the sharded
// path: with power removed, every subsequent observation of the hottest cell
// is no hotter than the last, and the trajectory approaches ambient from
// above.
func TestParallelMonotoneCooling(t *testing.T) {
	si := UniformGrid(3e-3, 3e-3, 6, 6)
	cu := UniformGrid(3e-3, 3e-3, 3, 3)
	m := parallelModel(t, si, cu, 1)
	for i := 0; i < m.NumSurfaceCells(); i++ {
		m.SetPower(i, 0.02)
	}
	for i := 0; i < 100; i++ {
		m.Step(0.05)
	}
	if m.MaxTemp() <= 301 {
		t.Fatalf("did not heat: %.3f K", m.MaxTemp())
	}
	for i := 0; i < m.NumSurfaceCells(); i++ {
		m.SetPower(i, 0)
	}
	prev := m.MaxTemp()
	for i := 0; i < 150; i++ {
		m.Step(0.05)
		cur := m.MaxTemp()
		if cur > prev+1e-12 {
			t.Fatalf("temperature rose to %.9f K (from %.9f) while cooling at step %d", cur, prev, i)
		}
		for j, v := range m.Temps() {
			if v < 300-1e-9 {
				t.Fatalf("cell %d undershot ambient: %.9f K", j, v)
			}
		}
		prev = cur
	}
	if prev > 300.05 {
		t.Errorf("still %.4f K after 7.5 s of cooling", prev)
	}
}

// TestParallelGridRefinementConvergence re-asserts grid-refinement
// convergence through the sharded transient solver: under a uniform power
// density, a coarse and a 4x-finer mesh integrated to (near) equilibrium
// must agree on the temperature rise.
func TestParallelGridRefinementConvergence(t *testing.T) {
	die := 4e-3
	density := 5000.0 // W/m²
	run := func(n int) float64 {
		si := UniformGrid(die, die, n, n)
		cu := UniformGrid(die, die, n/2, n/2)
		m := parallelModel(t, si, cu, 1)
		for i, c := range si {
			m.SetPower(i, density*c.Area())
		}
		for i := 0; i < 240; i++ {
			m.Step(0.05) // 12 s, ~10 package time constants
		}
		return m.MaxTemp()
	}
	coarse, fine := run(4), run(8)
	if rel := math.Abs(coarse-fine) / (fine - 300); rel > 0.02 {
		t.Errorf("grid refinement changed rise by %.2f%% (coarse %.4f, fine %.4f)",
			rel*100, coarse, fine)
	}
}

// TestWorkersResolution pins the Options.Workers contract: 0 resolves to a
// machine-dependent positive count, explicit values are honoured.
func TestWorkersResolution(t *testing.T) {
	si := UniformGrid(1e-3, 1e-3, 2, 2)
	cu := UniformGrid(1e-3, 1e-3, 1, 1)
	opt := DefaultOptions()
	m, err := NewModel(si, cu, opt)
	if err != nil {
		t.Fatal(err)
	}
	if m.Workers() < 1 {
		t.Errorf("auto workers resolved to %d", m.Workers())
	}
	opt.Workers = 3
	m, err = NewModel(si, cu, opt)
	if err != nil {
		t.Fatal(err)
	}
	if m.Workers() != 3 {
		t.Errorf("workers = %d, want 3", m.Workers())
	}
}
