package thermal

import (
	"runtime"
	"sync"
)

// The package keeps one persistent worker pool, sized by GOMAXPROCS at first
// use and shared by every Model, so repeated Step calls pay a channel handoff
// per shard instead of a goroutine spawn per sub-step. The submitting
// goroutine always executes shard 0 itself, which is why the pool holds
// GOMAXPROCS-1 resident workers.
var (
	poolOnce sync.Once
	poolCh   chan func()
)

func poolInit() {
	workers := runtime.GOMAXPROCS(0) - 1
	poolCh = make(chan func())
	for i := 0; i < workers; i++ {
		go func() {
			for f := range poolCh {
				f()
			}
		}()
	}
}

// parallelFor splits [0, n) into at most `shards` contiguous ranges and runs
// fn(shard, lo, hi) for each, executing shard 0 on the calling goroutine and
// handing the rest to the pool. The channel is unbuffered, so a handoff only
// happens when a worker is idle; otherwise the caller runs the shard inline
// and the cost degrades gracefully under contention (or on a one-CPU host).
// It returns only when every shard has finished.
func parallelFor(shards, n int, fn func(shard, lo, hi int)) {
	if n <= 0 {
		return
	}
	poolOnce.Do(poolInit)
	if shards > n {
		shards = n
	}
	chunk := (n + shards - 1) / shards
	var wg sync.WaitGroup
	for s := 1; s < shards; s++ {
		lo := s * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		s := s
		wg.Add(1)
		task := func() {
			fn(s, lo, hi)
			wg.Done()
		}
		select {
		case poolCh <- task:
		default:
			task()
		}
	}
	hi0 := chunk
	if hi0 > n {
		hi0 = n
	}
	fn(0, 0, hi0)
	wg.Wait()
}
