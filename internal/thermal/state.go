package thermal

import "fmt"

// ModelState is the checkpointable state of a thermal Model: cell
// temperatures, the temperatures the conductances were last evaluated at,
// injected powers and simulated time. Conductances themselves are not
// stored — they are a pure function of TAtK, so RestoreState recomputes
// them bit-exactly.
type ModelState struct {
	T    []float64 // current cell temperatures, K
	TAtK []float64 // temperatures at the last conductance refresh, K
	Pw   []float64 // injected power, W (bottom silicon cells)
	Time float64   // simulated seconds
}

// SaveState captures the model for checkpointing.
func (m *Model) SaveState() ModelState {
	return ModelState{
		T:    append([]float64(nil), m.t...),
		TAtK: append([]float64(nil), m.tAtK...),
		Pw:   append([]float64(nil), m.pw...),
		Time: m.time,
	}
}

// RestoreState rewinds the model to a saved state. The conductance tables
// are rebuilt by evaluating the conductance law at TAtK — by definition the
// temperatures of the last refresh — which reproduces kCell/edgeG/nbrG/sumG
// bit-identically without storing them.
func (m *Model) RestoreState(s ModelState) error {
	if len(s.T) != len(m.t) || len(s.TAtK) != len(m.tAtK) || len(s.Pw) != len(m.pw) {
		return fmt.Errorf("thermal: checkpoint has %d/%d/%d cells, model has %d/%d/%d",
			len(s.T), len(s.TAtK), len(s.Pw), len(m.t), len(m.tAtK), len(m.pw))
	}
	copy(m.t, s.TAtK)
	m.updateConductances()
	copy(m.t, s.T)
	copy(m.tAtK, s.TAtK)
	copy(m.pw, s.Pw)
	m.time = s.Time
	return nil
}
