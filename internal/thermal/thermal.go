// Package thermal is the configurable SW thermal-modelling library of the
// framework (Section 5 of the DAC'06 paper). It evaluates the run-time
// thermal behaviour of a silicon bulk chip: the die and the copper heat
// spreader are divided into cells of several sizes (small cells at the
// crucial points for high resolution, larger ones elsewhere), and each cell
// becomes a node of an equivalent electrical RC circuit with four lateral
// thermal resistances, one vertical resistance and one capacitance
// (Figure 3).
//
// Following the paper, silicon uses non-linear thermal resistances that
// match the temperature dependence of conductivity, k(T) = 150·(300/T)^4/3
// W/mK, while the copper spreader uses linear resistances. Heat enters as
// equivalent current sources on the bottom-surface cells (power density of
// the covering architectural component times cell area); no heat leaves
// through the package below, and the top-surface cells evacuate heat by
// natural convection through a package-to-air resistance weighted by the
// cell-to-spreader area ratio. Every cell interacts only with its
// neighbours, so cost is linear in the number of cells.
//
// The solver keeps the network in a flat CSR-style layout (edge endpoint and
// conductance arrays plus a per-cell incidence index) and can shard its cell
// loops over a persistent worker pool; see Options.Workers. The sharded path
// computes exactly the same per-cell arithmetic as the serial one, so both
// produce bit-identical trajectories.
package thermal

import (
	"errors"
	"fmt"
	"math"
	"runtime"
)

// Properties are the material and package constants of Table 2.
type Properties struct {
	SiK300   float64 // silicon conductivity at 300 K, W/(m·K)
	SiKExp   float64 // exponent of the (300/T) conductivity law
	SiCv     float64 // silicon volumetric specific heat, J/(m³·K)
	SiThick  float64 // die thickness, m
	CuK      float64 // copper conductivity, W/(m·K)
	CuCv     float64 // copper volumetric specific heat, J/(m³·K)
	CuThick  float64 // heat-spreader thickness, m
	PkgRes   float64 // package-to-air resistance, K/W
	AmbientK float64 // ambient temperature, K
}

// DefaultProperties returns Table 2 of the paper. The specific heats are
// the paper's 1.628e-12 and 3.55e-12 J/(µm³·K) converted to SI, and the
// 20 K/W package-to-air resistance is the paper's deliberately conservative
// low-power package value.
func DefaultProperties() Properties {
	return Properties{
		SiK300:   150,
		SiKExp:   4.0 / 3.0,
		SiCv:     1.628e6,
		SiThick:  350e-6,
		CuK:      400,
		CuCv:     3.55e6,
		CuThick:  1000e-6,
		PkgRes:   20,
		AmbientK: 300,
	}
}

// Validate checks physical plausibility.
func (p Properties) Validate() error {
	switch {
	case p.SiK300 <= 0 || p.CuK <= 0:
		return fmt.Errorf("thermal: conductivities must be positive")
	case p.SiCv <= 0 || p.CuCv <= 0:
		return fmt.Errorf("thermal: specific heats must be positive")
	case p.SiThick <= 0 || p.CuThick <= 0:
		return fmt.Errorf("thermal: thicknesses must be positive")
	case p.PkgRes <= 0:
		return fmt.Errorf("thermal: package resistance must be positive")
	case p.AmbientK <= 0:
		return fmt.Errorf("thermal: ambient temperature must be positive")
	}
	return nil
}

// SiConductivity evaluates the non-linear silicon conductivity at T kelvin.
// The paper's exponent 4/3 is evaluated as x·cbrt(x), which is considerably
// cheaper than math.Pow on the solver's hot path; other exponents fall back
// to math.Pow.
func (p Properties) SiConductivity(t float64) float64 {
	x := 300 / t
	if p.SiKExp == 4.0/3.0 {
		return p.SiK300 * x * math.Cbrt(x)
	}
	return p.SiK300 * math.Pow(x, p.SiKExp)
}

// Rect is an axis-aligned cell footprint in metres.
type Rect struct {
	X, Y, W, H float64
}

// Area returns the footprint area in m².
func (r Rect) Area() float64 { return r.W * r.H }

// Overlap returns the overlapping area of two footprints.
func (r Rect) Overlap(o Rect) float64 {
	w := math.Min(r.X+r.W, o.X+o.W) - math.Max(r.X, o.X)
	h := math.Min(r.Y+r.H, o.Y+o.H) - math.Max(r.Y, o.Y)
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

const geomEps = 1e-9 // 1 nm tolerance on geometric coincidence

// contact returns the shared boundary length between two cells that abut
// laterally, and whether they do.
func contact(a, b Rect) (float64, bool) {
	// b to the right of a or a to the right of b.
	if math.Abs(a.X+a.W-b.X) < geomEps || math.Abs(b.X+b.W-a.X) < geomEps {
		l := math.Min(a.Y+a.H, b.Y+b.H) - math.Max(a.Y, b.Y)
		if l > geomEps {
			return l, true
		}
	}
	if math.Abs(a.Y+a.H-b.Y) < geomEps || math.Abs(b.Y+b.H-a.Y) < geomEps {
		l := math.Min(a.X+a.W, b.X+b.W) - math.Max(a.X, b.X)
		if l > geomEps {
			return l, true
		}
	}
	return 0, false
}

// Options configures mesh construction and the solver.
type Options struct {
	Props Properties
	NzSi  int // silicon sub-layers (>=1)
	NzCu  int // copper sub-layers (>=1)

	// Workers is the number of shards the solver's cell and edge loops are
	// split into on a persistent worker pool: 0 picks GOMAXPROCS, 1 forces
	// the serial path. Sharding never changes results — each cell's update
	// is computed with exactly the same arithmetic in either mode.
	Workers int

	// MinParallelCells is the cell count below which the solver stays
	// serial even with Workers > 1, so small meshes (e.g. the 28-cell
	// Fig. 6 grid) never pay synchronisation overhead. 0 picks the
	// default of 1024.
	MinParallelCells int
}

// DefaultOptions returns Table 2 properties with one sub-layer per material
// and automatic solver sharding (Workers = GOMAXPROCS above the default
// cell threshold).
func DefaultOptions() Options {
	return Options{Props: DefaultProperties(), NzSi: 1, NzCu: 1}
}

// defaultMinParallelCells is the serial-fallback threshold: below this many
// RC nodes one sub-step is tens of microseconds of work at most, and shard
// handoff would cost a measurable fraction of it.
const defaultMinParallelCells = 1024

// siKTolK is the silicon temperature drift (kelvin) that triggers a
// conductance refresh; the conductivity law is smooth, so a 0.25 K drift
// changes k by well under 0.2%.
const siKTolK = 0.25

// edgeRec is the construction-time form of one thermal resistance joining
// cells a and b: conductance = area / (da/ka + db/kb), with da, db the
// half-distances from each node to the interface.
type edgeRec struct {
	a, b   int
	area   float64
	da, db float64
}

// Model is the RC thermal network in a flat, solver-friendly layout.
type Model struct {
	props Properties
	nSi2D int // cells per silicon sub-layer
	nzSi  int
	nSi   int // total silicon cells (the first nSi cells; copper follows)

	// Edges as struct-of-arrays. The [0, nVarEdges) prefix touches at
	// least one silicon cell, so its conductances depend on temperature
	// and are refreshed; the copper-copper suffix is computed once.
	edgeA, edgeB   []int32
	edgeArea       []float64
	edgeDa, edgeDb []float64
	edgeG          []float64
	nVarEdges      int

	// CSR incidence: cell i's edges are nbrEdge[nbrStart[i]:nbrStart[i+1]]
	// with the far endpoint in nbrCell and the edge conductance mirrored
	// into nbrG (so the sub-step loop streams conductances sequentially
	// instead of gathering through nbrEdge). Each cell's flow is
	// accumulated from this index alone, which is what makes sharded
	// sub-steps race-free: shard workers only read t and only write their
	// own cells.
	nbrStart []int32
	nbrCell  []int32
	nbrEdge  []int32
	nbrG     []float64

	convIdx []int     // top-copper cells with a convection path
	convG   []float64 // conductance paired with convIdx
	conv    []float64 // dense per-cell convection conductance (hot loop)

	capC   []float64 // per-cell thermal capacitance, J/K
	invCap []float64
	t      []float64 // temperatures, K (current state)
	tNext  []float64 // next-sub-step buffer, swapped with t
	pw     []float64 // injected power, W (bottom silicon cells)
	sumG   []float64 // per-cell total conductance (for stability)
	kCell  []float64 // per-cell conductivity at the last refresh
	tAtK   []float64 // temperatures the conductances were evaluated at

	time     float64
	spreader float64 // spreader area, m²

	workers int // shard count for the parallel path
	minPar  int // serial fallback below this cell count
}

// validateGrid rejects rectangles the RC construction cannot give a physical
// meaning: non-finite coordinates and zero or negative footprints (a
// zero-area cell would carry zero capacitance and break the explicit
// integrator's stability bound).
func validateGrid(name string, cells []Rect) error {
	for i, r := range cells {
		for _, v := range [4]float64{r.X, r.Y, r.W, r.H} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("thermal: %s cell %d has non-finite geometry %+v", name, i, r)
			}
		}
		if r.W <= geomEps || r.H <= geomEps {
			return fmt.Errorf("thermal: %s cell %d has degenerate footprint %+v", name, i, r)
		}
	}
	return nil
}

// NewModel builds the RC network. siCells is the 2D die discretisation
// (cells of several sizes are allowed; they must tile without overlapping),
// and cuCells the heat-spreader discretisation (commonly coarser). The two
// grids are replicated across NzSi and NzCu sub-layers. Power is injected
// on the bottom silicon sub-layer; convection leaves the top copper
// sub-layer.
func NewModel(siCells, cuCells []Rect, opt Options) (*Model, error) {
	if err := opt.Props.Validate(); err != nil {
		return nil, err
	}
	if len(siCells) == 0 || len(cuCells) == 0 {
		return nil, fmt.Errorf("thermal: both grids must be non-empty")
	}
	if opt.NzSi < 1 || opt.NzCu < 1 {
		return nil, fmt.Errorf("thermal: sub-layer counts must be >= 1")
	}
	if err := validateGrid("silicon", siCells); err != nil {
		return nil, err
	}
	if err := validateGrid("copper", cuCells); err != nil {
		return nil, err
	}
	for i, a := range siCells {
		for _, b := range siCells[i+1:] {
			if a.Overlap(b) > geomEps*geomEps {
				return nil, fmt.Errorf("thermal: overlapping silicon cells %v %v", a, b)
			}
		}
	}
	for i, a := range cuCells {
		for _, b := range cuCells[i+1:] {
			if a.Overlap(b) > geomEps*geomEps {
				return nil, fmt.Errorf("thermal: overlapping copper cells %v %v", a, b)
			}
		}
	}

	m := &Model{props: opt.Props, nSi2D: len(siCells), nzSi: opt.NzSi,
		nSi: len(siCells) * opt.NzSi}
	tSi := opt.Props.SiThick / float64(opt.NzSi)
	tCu := opt.Props.CuThick / float64(opt.NzCu)
	nCells := len(siCells)*opt.NzSi + len(cuCells)*opt.NzCu
	m.capC = make([]float64, 0, nCells)
	for z := 0; z < opt.NzSi; z++ {
		for _, r := range siCells {
			m.capC = append(m.capC, opt.Props.SiCv*r.Area()*tSi)
		}
	}
	for z := 0; z < opt.NzCu; z++ {
		for _, r := range cuCells {
			m.capC = append(m.capC, opt.Props.CuCv*r.Area()*tCu)
		}
	}
	for _, r := range cuCells {
		m.spreader += r.Area()
	}

	var edges []edgeRec
	// Lateral edges within each sub-layer.
	addLateral := func(base int, grid []Rect, thick float64) {
		for i := 0; i < len(grid); i++ {
			for j := i + 1; j < len(grid); j++ {
				if l, ok := contact(grid[i], grid[j]); ok {
					a, b := base+i, base+j
					var da, db float64
					// Half the centre distance along the contact normal.
					if math.Abs(grid[i].X+grid[i].W-grid[j].X) < geomEps ||
						math.Abs(grid[j].X+grid[j].W-grid[i].X) < geomEps {
						da, db = grid[i].W/2, grid[j].W/2
					} else {
						da, db = grid[i].H/2, grid[j].H/2
					}
					edges = append(edges, edgeRec{a: a, b: b, area: l * thick, da: da, db: db})
				}
			}
		}
	}
	for z := 0; z < opt.NzSi; z++ {
		addLateral(z*len(siCells), siCells, tSi)
	}
	cuBase := opt.NzSi * len(siCells)
	for z := 0; z < opt.NzCu; z++ {
		addLateral(cuBase+z*len(cuCells), cuCells, tCu)
	}

	// Vertical edges between consecutive silicon sub-layers.
	for z := 0; z+1 < opt.NzSi; z++ {
		for i := range siCells {
			edges = append(edges, edgeRec{a: z*len(siCells) + i, b: (z+1)*len(siCells) + i,
				area: siCells[i].Area(), da: tSi / 2, db: tSi / 2})
		}
	}
	// Vertical edges from top silicon sub-layer into bottom copper
	// sub-layer, by footprint overlap (the grids may differ).
	topSi := (opt.NzSi - 1) * len(siCells)
	for i, s := range siCells {
		coupled := 0.0
		for j, c := range cuCells {
			if ov := s.Overlap(c); ov > geomEps*geomEps {
				edges = append(edges, edgeRec{a: topSi + i, b: cuBase + j,
					area: ov, da: tSi / 2, db: tCu / 2})
				coupled += ov
			}
		}
		if coupled < s.Area()*0.999 {
			return nil, fmt.Errorf("thermal: silicon cell %d (%v) not fully covered by the spreader grid", i, s)
		}
	}
	// Vertical edges between copper sub-layers.
	for z := 0; z+1 < opt.NzCu; z++ {
		for i := range cuCells {
			edges = append(edges, edgeRec{a: cuBase + z*len(cuCells) + i,
				b:    cuBase + (z+1)*len(cuCells) + i,
				area: cuCells[i].Area(), da: tCu / 2, db: tCu / 2})
		}
	}

	// Convection from the top copper sub-layer: half the cell's vertical
	// resistance in series with the package-to-air resistance weighted by
	// the cell/spreader area ratio (paper Section 5.2).
	topCu := cuBase + (opt.NzCu-1)*len(cuCells)
	for i, c := range cuCells {
		rHalf := (tCu / 2) / (opt.Props.CuK * c.Area())
		rConv := opt.Props.PkgRes * (m.spreader / c.Area())
		m.convIdx = append(m.convIdx, topCu+i)
		m.convG = append(m.convG, 1/(rHalf+rConv))
	}

	m.finalize(nCells, edges, opt)
	return m, nil
}

// finalize flattens the construction-time edge list into the CSR layout and
// sizes the solver state.
func (m *Model) finalize(nCells int, edges []edgeRec, opt Options) {
	// Partition: temperature-dependent (silicon-touching) edges first, so
	// refreshes touch a dense prefix.
	ordered := make([]edgeRec, 0, len(edges))
	for _, e := range edges {
		if e.a < m.nSi || e.b < m.nSi {
			ordered = append(ordered, e)
		}
	}
	m.nVarEdges = len(ordered)
	for _, e := range edges {
		if !(e.a < m.nSi || e.b < m.nSi) {
			ordered = append(ordered, e)
		}
	}

	ne := len(ordered)
	m.edgeA = make([]int32, ne)
	m.edgeB = make([]int32, ne)
	m.edgeArea = make([]float64, ne)
	m.edgeDa = make([]float64, ne)
	m.edgeDb = make([]float64, ne)
	m.edgeG = make([]float64, ne)
	for i, e := range ordered {
		m.edgeA[i], m.edgeB[i] = int32(e.a), int32(e.b)
		m.edgeArea[i], m.edgeDa[i], m.edgeDb[i] = e.area, e.da, e.db
	}

	// CSR incidence index.
	deg := make([]int32, nCells+1)
	for i := range ordered {
		deg[m.edgeA[i]+1]++
		deg[m.edgeB[i]+1]++
	}
	for i := 0; i < nCells; i++ {
		deg[i+1] += deg[i]
	}
	m.nbrStart = deg
	fill := make([]int32, nCells)
	m.nbrCell = make([]int32, 2*ne)
	m.nbrEdge = make([]int32, 2*ne)
	m.nbrG = make([]float64, 2*ne)
	for i := range ordered {
		a, b := m.edgeA[i], m.edgeB[i]
		pa := m.nbrStart[a] + fill[a]
		m.nbrCell[pa], m.nbrEdge[pa] = b, int32(i)
		fill[a]++
		pb := m.nbrStart[b] + fill[b]
		m.nbrCell[pb], m.nbrEdge[pb] = a, int32(i)
		fill[b]++
	}

	m.conv = make([]float64, nCells)
	for k, ci := range m.convIdx {
		m.conv[ci] = m.convG[k]
	}
	m.invCap = make([]float64, nCells)
	for i, c := range m.capC {
		m.invCap[i] = 1 / c
	}

	m.t = make([]float64, nCells)
	m.tNext = make([]float64, nCells)
	for i := range m.t {
		m.t[i] = m.props.AmbientK
	}
	m.pw = make([]float64, m.nSi2D) // bottom silicon sub-layer only
	m.sumG = make([]float64, nCells)
	m.kCell = make([]float64, nCells)
	m.tAtK = make([]float64, nCells)

	m.workers = opt.Workers
	if m.workers <= 0 {
		m.workers = runtime.GOMAXPROCS(0)
	}
	m.minPar = opt.MinParallelCells
	if m.minPar <= 0 {
		m.minPar = defaultMinParallelCells
	}
	m.updateConductances()
}

// NumCells returns the total node count of the RC network.
func (m *Model) NumCells() int { return len(m.t) }

// NumSurfaceCells returns the number of bottom-silicon cells, i.e. the
// power-injection resolution.
func (m *Model) NumSurfaceCells() int { return m.nSi2D }

// NumEdges returns the resistor count (excluding convection resistors).
func (m *Model) NumEdges() int { return len(m.edgeA) }

// Workers returns the effective shard count of the solver (1 means serial).
func (m *Model) Workers() int { return m.workers }

// Time returns the simulated time in seconds.
func (m *Model) Time() float64 { return m.time }

// SetPower sets the injected power (W) of bottom-surface cell i.
func (m *Model) SetPower(i int, watts float64) { m.pw[i] = watts }

// SetPowers replaces the whole injected power vector; its length must be
// NumSurfaceCells.
func (m *Model) SetPowers(watts []float64) error {
	if len(watts) != m.nSi2D {
		return fmt.Errorf("thermal: power vector length %d, want %d", len(watts), m.nSi2D)
	}
	copy(m.pw, watts)
	return nil
}

// TotalPower returns the currently injected power in watts.
func (m *Model) TotalPower() float64 {
	var s float64
	for _, p := range m.pw {
		s += p
	}
	return s
}

// Temp returns the temperature of bottom-surface cell i (what an on-die
// sensor in that cell reads).
func (m *Model) Temp(i int) float64 { return m.t[i] }

// Temps copies the bottom-surface temperatures into a fresh slice.
func (m *Model) Temps() []float64 {
	return m.TempsInto(nil)
}

// TempsInto copies the bottom-surface temperatures into out, growing it
// only when its capacity is insufficient. Callers that hold on to a buffer
// across windows (the pipelined co-emulation loop) pay zero allocations in
// steady state.
func (m *Model) TempsInto(out []float64) []float64 {
	if cap(out) < m.nSi2D {
		out = make([]float64, m.nSi2D)
	}
	out = out[:m.nSi2D]
	copy(out, m.t[:m.nSi2D])
	return out
}

// AllTemps copies every node temperature (layer-major, silicon first).
func (m *Model) AllTemps() []float64 {
	out := make([]float64, len(m.t))
	copy(out, m.t)
	return out
}

// MaxTemp returns the hottest bottom-surface temperature.
func (m *Model) MaxTemp() float64 {
	max := m.t[0]
	for _, v := range m.t[1:m.nSi2D] {
		if v > max {
			max = v
		}
	}
	return max
}

// ConvectedPower returns the instantaneous heat flow into the ambient, W.
func (m *Model) ConvectedPower() float64 {
	var q float64
	for k, ci := range m.convIdx {
		q += m.convG[k] * (m.t[ci] - m.props.AmbientK)
	}
	return q
}

// parRange runs fn over [0, n), sharded when the model is large enough and
// configured for it, serially otherwise.
func (m *Model) parRange(n int, fn func(lo, hi int)) {
	if m.workers <= 1 || len(m.t) < m.minPar || n < m.workers {
		fn(0, n)
		return
	}
	parallelFor(m.workers, n, func(_, lo, hi int) { fn(lo, hi) })
}

// updateConductances refreshes edge conductances using the current cell
// temperatures for the non-linear silicon law, and recomputes the per-cell
// conductance sums used for the stability bound. It also records the
// temperatures it used, so the solver can skip refreshes while temperatures
// have barely moved. Only the silicon-touching edge prefix is re-evaluated
// after construction; copper-copper conductances never change.
func (m *Model) updateConductances() {
	first := m.kCell[0] == 0 // only true before the initial refresh
	m.parRange(len(m.t), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i < m.nSi {
				m.kCell[i] = m.props.SiConductivity(m.t[i])
			} else {
				m.kCell[i] = m.props.CuK
			}
			m.tAtK[i] = m.t[i]
		}
	})
	ne := m.nVarEdges
	if first {
		ne = len(m.edgeA)
	}
	m.parRange(ne, func(lo, hi int) {
		for e := lo; e < hi; e++ {
			m.edgeG[e] = m.edgeArea[e] /
				(m.edgeDa[e]/m.kCell[m.edgeA[e]] + m.edgeDb[e]/m.kCell[m.edgeB[e]])
		}
	})
	m.parRange(len(m.t), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := m.conv[i]
			for k := m.nbrStart[i]; k < m.nbrStart[i+1]; k++ {
				g := m.edgeG[m.nbrEdge[k]]
				m.nbrG[k] = g
				s += g
			}
			m.sumG[i] = s
		}
	})
}

// conductancesStale reports whether any silicon temperature drifted more
// than tol kelvin since the last conductance refresh (early exit on the
// first stale cell).
func (m *Model) conductancesStale(tol float64) bool {
	t, tAtK := m.t, m.tAtK
	for i := 0; i < m.nSi; i++ {
		d := t[i] - tAtK[i]
		if d > tol || d < -tol {
			return true
		}
	}
	return false
}

// stableDt returns a forward-Euler-stable sub-step: half the smallest
// thermal time constant C/ΣG in the network.
func (m *Model) stableDt() float64 {
	min := math.Inf(1)
	for i := range m.capC {
		if m.sumG[i] > 0 {
			if tau := m.capC[i] / m.sumG[i]; tau < min {
				min = tau
			}
		}
	}
	return 0.5 * min
}

// substepRange advances cells [lo, hi) by one explicit-Euler sub-step of h
// seconds, reading m.t and writing m.tNext. All flows are evaluated on the
// state at the start of the sub-step, so the result is independent of cell
// order and of how the range is sharded. Convection is applied branchlessly
// (conv is zero away from the top copper sub-layer).
func (m *Model) substepRange(h float64, lo, hi int) {
	t, tn := m.t, m.tNext
	nbrG, nbrCell, nbrStart := m.nbrG, m.nbrCell, m.nbrStart
	invCap, conv, pw := m.invCap, m.conv, m.pw
	amb := m.props.AmbientK
	for i := lo; i < hi; i++ {
		ti := t[i]
		q := -conv[i] * (ti - amb)
		for k, e := int(nbrStart[i]), int(nbrStart[i+1]); k < e; k++ {
			q += nbrG[k] * (t[nbrCell[k]] - ti)
		}
		if i < len(pw) {
			q += pw[i]
		}
		tn[i] = ti + h*q*invCap[i]
	}
}

// substepAll runs one sub-step over every cell — serial below the parallel
// threshold, sharded on the worker pool above it.
func (m *Model) substepAll(h float64) {
	n := len(m.t)
	if m.workers <= 1 || n < m.minPar {
		m.substepRange(h, 0, n)
		return
	}
	parallelFor(m.workers, n, func(_, lo, hi int) {
		m.substepRange(h, lo, hi)
	})
}

// Step advances the thermal state by dt seconds using forward Euler with
// stability-limited sub-stepping; the silicon conductances are refreshed
// whenever any silicon temperature has drifted more than 0.25 K since they
// were last evaluated, so the non-linear law tracks the trajectory at a
// negligible fraction of the cost of per-sub-step re-evaluation.
func (m *Model) Step(dt float64) {
	h := m.stableDt()
	for remaining := dt; remaining > 1e-15; {
		if m.conductancesStale(siKTolK) {
			m.updateConductances()
			h = m.stableDt()
		}
		if h > remaining {
			h = remaining
		}
		m.substepAll(h)
		m.t, m.tNext = m.tNext, m.t
		remaining -= h
	}
	m.time += dt
}

// ErrNoConvergence is wrapped by the error SteadyState returns when the
// relaxation does not reach the requested tolerance within its sweep budget;
// callers branch on it with errors.Is and may still use the model's state as
// a best-effort result.
var ErrNoConvergence = errors.New("thermal: steady state did not converge")

// SteadyState relaxes the network to its equilibrium for the current power
// vector with Gauss–Seidel iteration (non-linear conductances refreshed per
// sweep) over the CSR incidence index. It returns the number of sweeps used,
// or an error wrapping ErrNoConvergence if tolerance is not met within
// maxSweeps. Sweeps are intentionally serial: Gauss–Seidel uses in-sweep
// updates, so its trajectory is only deterministic in cell order.
func (m *Model) SteadyState(tol float64, maxSweeps int) (int, error) {
	for sweep := 1; sweep <= maxSweeps; sweep++ {
		m.updateConductances()
		var maxDelta float64
		for i := range m.t {
			num := m.conv[i] * m.props.AmbientK
			den := m.conv[i]
			if i < len(m.pw) {
				num += m.pw[i]
			}
			for k := m.nbrStart[i]; k < m.nbrStart[i+1]; k++ {
				g := m.edgeG[m.nbrEdge[k]]
				num += g * m.t[m.nbrCell[k]]
				den += g
			}
			if den == 0 {
				continue
			}
			nt := num / den
			if d := math.Abs(nt - m.t[i]); d > maxDelta {
				maxDelta = d
			}
			m.t[i] = nt
		}
		if maxDelta < tol {
			return sweep, nil
		}
	}
	return maxSweeps, fmt.Errorf("%w to %g in %d sweeps", ErrNoConvergence, tol, maxSweeps)
}

// Reset returns every node to ambient and clears simulated time (the power
// vector is preserved).
func (m *Model) Reset() {
	for i := range m.t {
		m.t[i] = m.props.AmbientK
	}
	m.time = 0
}

// UniformGrid tiles a w×h metre die into nx×ny equal cells.
func UniformGrid(w, h float64, nx, ny int) []Rect {
	cells := make([]Rect, 0, nx*ny)
	cw, ch := w/float64(nx), h/float64(ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			cells = append(cells, Rect{X: float64(i) * cw, Y: float64(j) * ch, W: cw, H: ch})
		}
	}
	return cells
}

// RefineGrid splits every cell selected by pick into 2×2 sub-cells,
// producing the multi-resolution grids of Figure 3(a): smallest cells at
// the crucial points, larger ones where conditions are not critical.
func RefineGrid(cells []Rect, pick func(Rect) bool) []Rect {
	var out []Rect
	for _, c := range cells {
		if pick(c) {
			hw, hh := c.W/2, c.H/2
			out = append(out,
				Rect{c.X, c.Y, hw, hh},
				Rect{c.X + hw, c.Y, hw, hh},
				Rect{c.X, c.Y + hh, hw, hh},
				Rect{c.X + hw, c.Y + hh, hw, hh})
		} else {
			out = append(out, c)
		}
	}
	return out
}
