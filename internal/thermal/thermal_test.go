package thermal

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func singleColumn(t *testing.T, area float64) *Model {
	t.Helper()
	side := math.Sqrt(area)
	si := []Rect{{0, 0, side, side}}
	cu := []Rect{{0, 0, side, side}}
	m, err := NewModel(si, cu, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestAnalyticalColumn checks the solver against the closed-form
// steady-state of a single Si+Cu column: T = Tamb + P*(Rsi/2 + Rcu + Rpkg),
// with the silicon resistance evaluated at the converged temperature
// (non-linear fixed point iterated analytically).
func TestAnalyticalColumn(t *testing.T) {
	p := DefaultProperties()
	area := 1e-6 // 1 mm²
	pw := 0.1    // W
	m := singleColumn(t, area)
	m.SetPower(0, pw)
	if _, err := m.SteadyState(1e-9, 10000); err != nil {
		t.Fatal(err)
	}
	// Analytic fixed point.
	tsi := p.AmbientK
	for i := 0; i < 200; i++ {
		k := p.SiConductivity(tsi)
		r := (p.SiThick/2)/(k*area) + (p.CuThick/2)/(p.CuK*area) + // Si node -> Cu node
			(p.CuThick/2)/(p.CuK*area) + p.PkgRes // Cu node -> ambient
		tsi = p.AmbientK + pw*r
	}
	if got := m.Temp(0); math.Abs(got-tsi) > 1e-4 {
		t.Errorf("steady Si temp = %.6f K, analytic %.6f K", got, tsi)
	}
}

func TestEnergyBalanceAtSteadyState(t *testing.T) {
	si := UniformGrid(4e-3, 4e-3, 6, 6)
	cu := UniformGrid(4e-3, 4e-3, 3, 3)
	m, err := NewModel(si, cu, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.NumSurfaceCells(); i++ {
		m.SetPower(i, 0.01)
	}
	if _, err := m.SteadyState(1e-10, 50000); err != nil {
		t.Fatal(err)
	}
	in, out := m.TotalPower(), m.ConvectedPower()
	if math.Abs(in-out)/in > 1e-5 {
		t.Errorf("energy balance: in %.9f W, convected %.9f W", in, out)
	}
}

func TestZeroPowerStaysAmbient(t *testing.T) {
	m := singleColumn(t, 1e-6)
	m.Step(0.1)
	if got := m.Temp(0); math.Abs(got-300) > 1e-12 {
		t.Errorf("temp drifted to %v with zero power", got)
	}
}

func TestTransientConvergesToSteadyState(t *testing.T) {
	si := UniformGrid(2e-3, 2e-3, 4, 4)
	cu := UniformGrid(2e-3, 2e-3, 2, 2)
	mT, _ := NewModel(si, cu, DefaultOptions())
	mS, _ := NewModel(si, cu, DefaultOptions())
	for i := 0; i < mT.NumSurfaceCells(); i++ {
		w := 0.002 * float64(1+i%3)
		mT.SetPower(i, w)
		mS.SetPower(i, w)
	}
	// Integrate long enough (several seconds: package time constants).
	for i := 0; i < 400; i++ {
		mT.Step(0.05)
	}
	if _, err := mS.SteadyState(1e-10, 50000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < mT.NumSurfaceCells(); i++ {
		if d := math.Abs(mT.Temp(i) - mS.Temp(i)); d > 0.01 {
			t.Fatalf("cell %d: transient %.4f vs steady %.4f", i, mT.Temp(i), mS.Temp(i))
		}
	}
}

func TestTransientMonotoneHeating(t *testing.T) {
	m := singleColumn(t, 1e-6)
	m.SetPower(0, 0.05)
	prev := m.Temp(0)
	for i := 0; i < 50; i++ {
		m.Step(0.01)
		cur := m.Temp(0)
		if cur < prev-1e-12 {
			t.Fatalf("temperature fell during constant heating at step %d", i)
		}
		prev = cur
	}
	if math.Abs(m.Time()-0.5) > 1e-12 {
		t.Errorf("time = %v", m.Time())
	}
}

func TestHotspotSpreading(t *testing.T) {
	si := UniformGrid(4e-3, 4e-3, 8, 8)
	cu := UniformGrid(4e-3, 4e-3, 4, 4)
	m, _ := NewModel(si, cu, DefaultOptions())
	// Single hot cell in the corner.
	m.SetPower(0, 0.3)
	if _, err := m.SteadyState(1e-9, 50000); err != nil {
		t.Fatal(err)
	}
	// The heated cell is the hottest; the far corner is the coolest; all
	// cells are above ambient.
	temps := m.Temps()
	if m.MaxTemp() != temps[0] {
		t.Errorf("hotspot not hottest: max %.3f, cell0 %.3f", m.MaxTemp(), temps[0])
	}
	far := temps[len(temps)-1]
	if far >= temps[0] {
		t.Error("far corner as hot as the hotspot")
	}
	for i, v := range temps {
		if v <= 300 {
			t.Fatalf("cell %d at %.3f K not above ambient", i, v)
		}
	}
}

func TestMorePowerMeansHotter(t *testing.T) {
	lo := singleColumn(t, 1e-6)
	hi := singleColumn(t, 1e-6)
	lo.SetPower(0, 0.01)
	hi.SetPower(0, 0.02)
	lo.SteadyState(1e-9, 10000)
	hi.SteadyState(1e-9, 10000)
	if hi.Temp(0) <= lo.Temp(0) {
		t.Errorf("2x power not hotter: %.4f vs %.4f", hi.Temp(0), lo.Temp(0))
	}
}

// Property: for any positive power on a small mesh, steady temperatures are
// above ambient and bounded by the single-resistance worst case.
func TestSteadyStateBoundsQuick(t *testing.T) {
	f := func(milliwatts uint8) bool {
		pw := float64(milliwatts%100+1) * 1e-3
		m := singleColumn(t, 1e-6)
		m.SetPower(0, pw)
		if _, err := m.SteadyState(1e-8, 20000); err != nil {
			return false
		}
		tmax := m.Temp(0)
		if tmax <= 300 {
			return false
		}
		// Generous upper bound: everything in series at the coldest
		// (most resistive) silicon conductivity plausible here.
		p := DefaultProperties()
		kMin := p.SiConductivity(500)
		rMax := p.SiThick/(kMin*1e-6) + p.CuThick/(p.CuK*1e-6) + p.PkgRes
		return tmax <= 300+pw*rMax+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNonlinearVsConstantConductivity(t *testing.T) {
	si := UniformGrid(2e-3, 2e-3, 4, 4)
	cu := UniformGrid(2e-3, 2e-3, 2, 2)
	nl, _ := NewModel(si, cu, DefaultOptions())
	opt := DefaultOptions()
	opt.Props.SiKExp = 0 // constant k = 150
	lin, _ := NewModel(si, cu, opt)
	for i := 0; i < nl.NumSurfaceCells(); i++ {
		nl.SetPower(i, 0.05)
		lin.SetPower(i, 0.05)
	}
	nl.SteadyState(1e-9, 50000)
	lin.SteadyState(1e-9, 50000)
	// Hot silicon conducts worse than the 300 K value, so the non-linear
	// model must run hotter.
	if nl.MaxTemp() <= lin.MaxTemp() {
		t.Errorf("non-linear %.4f K not above linear %.4f K", nl.MaxTemp(), lin.MaxTemp())
	}
}

func TestGridRefinementConvergence(t *testing.T) {
	// Uniform power density: coarse and fine grids must agree closely.
	die := 4e-3
	density := 5000.0 // W/m² (≈ ARM7-class)
	run := func(n int) float64 {
		si := UniformGrid(die, die, n, n)
		cu := UniformGrid(die, die, n/2, n/2)
		m, err := NewModel(si, cu, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range si {
			m.SetPower(i, density*c.Area())
		}
		if _, err := m.SteadyState(1e-9, 100000); err != nil {
			t.Fatal(err)
		}
		return m.MaxTemp()
	}
	coarse, fine := run(4), run(12)
	if rel := math.Abs(coarse-fine) / (fine - 300); rel > 0.02 {
		t.Errorf("grid refinement changed rise by %.2f%% (coarse %.4f, fine %.4f)",
			rel*100, coarse, fine)
	}
}

func TestMultiLayerStack(t *testing.T) {
	si := UniformGrid(2e-3, 2e-3, 3, 3)
	cu := UniformGrid(2e-3, 2e-3, 3, 3)
	opt := DefaultOptions()
	opt.NzSi, opt.NzCu = 3, 2
	m, err := NewModel(si, cu, opt)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCells() != 9*3+9*2 {
		t.Errorf("cells = %d", m.NumCells())
	}
	m.SetPower(4, 0.2) // centre
	if _, err := m.SteadyState(1e-9, 50000); err != nil {
		t.Fatal(err)
	}
	all := m.AllTemps()
	// Vertical gradient: bottom Si hotter than top Cu above the hotspot.
	if all[4] <= all[len(all)-5] {
		t.Errorf("no vertical gradient: bottom %.4f, top %.4f", all[4], all[len(all)-5])
	}
	// Energy balance still holds with sub-layers.
	if in, out := m.TotalPower(), m.ConvectedPower(); math.Abs(in-out)/in > 1e-5 {
		t.Errorf("balance: %.6f in, %.6f out", in, out)
	}
}

func TestRefineGrid(t *testing.T) {
	base := UniformGrid(2e-3, 2e-3, 2, 2)
	refined := RefineGrid(base, func(r Rect) bool { return r.X == 0 && r.Y == 0 })
	if len(refined) != 3+4 {
		t.Fatalf("refined cells = %d", len(refined))
	}
	// Total area preserved.
	var a0, a1 float64
	for _, c := range base {
		a0 += c.Area()
	}
	for _, c := range refined {
		a1 += c.Area()
	}
	if math.Abs(a0-a1) > 1e-15 {
		t.Errorf("area changed: %g vs %g", a0, a1)
	}
	// Mixed-resolution mesh builds and solves.
	cu := UniformGrid(2e-3, 2e-3, 1, 1)
	m, err := NewModel(refined, cu, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m.SetPower(0, 0.05)
	if _, err := m.SteadyState(1e-9, 50000); err != nil {
		t.Fatal(err)
	}
	if m.MaxTemp() <= 300 {
		t.Error("refined mesh did not heat")
	}
}

func TestModelValidation(t *testing.T) {
	si := UniformGrid(1e-3, 1e-3, 2, 2)
	cu := UniformGrid(1e-3, 1e-3, 1, 1)
	if _, err := NewModel(nil, cu, DefaultOptions()); err == nil {
		t.Error("nil silicon grid accepted")
	}
	opt := DefaultOptions()
	opt.NzSi = 0
	if _, err := NewModel(si, cu, opt); err == nil {
		t.Error("zero sub-layers accepted")
	}
	opt = DefaultOptions()
	opt.Props.PkgRes = -1
	if _, err := NewModel(si, cu, opt); err == nil {
		t.Error("negative package resistance accepted")
	}
	// Overlapping silicon cells rejected.
	bad := []Rect{{0, 0, 1e-3, 1e-3}, {0.5e-3, 0, 1e-3, 1e-3}}
	if _, err := NewModel(bad, cu, DefaultOptions()); err == nil {
		t.Error("overlapping cells accepted")
	}
	// Spreader not covering the die rejected.
	small := []Rect{{0, 0, 0.4e-3, 0.4e-3}}
	if _, err := NewModel(si, small, DefaultOptions()); err == nil {
		t.Error("uncovered die accepted")
	}
	if err := (Properties{}).Validate(); err == nil {
		t.Error("zero properties accepted")
	}
}

func TestSetPowersAndReset(t *testing.T) {
	m := singleColumn(t, 1e-6)
	if err := m.SetPowers([]float64{0.1, 0.2}); err == nil {
		t.Error("wrong-length power vector accepted")
	}
	if err := m.SetPowers([]float64{0.1}); err != nil {
		t.Fatal(err)
	}
	m.Step(0.5)
	if m.Temp(0) <= 300 {
		t.Error("did not heat")
	}
	m.Reset()
	if m.Temp(0) != 300 || m.Time() != 0 {
		t.Error("reset incomplete")
	}
	if m.TotalPower() != 0.1 {
		t.Error("reset should preserve powers")
	}
}

func TestSiConductivityLaw(t *testing.T) {
	p := DefaultProperties()
	if k := p.SiConductivity(300); math.Abs(k-150) > 1e-9 {
		t.Errorf("k(300) = %v", k)
	}
	// Monotonically decreasing in T.
	if p.SiConductivity(400) >= p.SiConductivity(300) {
		t.Error("conductivity should fall with temperature")
	}
	// Paper's 4/3 law: k(600)/k(300) = (1/2)^(4/3).
	want := 150 * math.Pow(0.5, 4.0/3.0)
	if k := p.SiConductivity(600); math.Abs(k-want) > 1e-9 {
		t.Errorf("k(600) = %v, want %v", k, want)
	}
}

func TestRectHelpers(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{1, 1, 2, 2}
	if got := a.Overlap(b); got != 1 {
		t.Errorf("overlap = %v", got)
	}
	if got := a.Overlap(Rect{5, 5, 1, 1}); got != 0 {
		t.Errorf("disjoint overlap = %v", got)
	}
	if l, ok := contact(Rect{0, 0, 1, 1}, Rect{1, 0, 1, 1}); !ok || l != 1 {
		t.Errorf("contact = %v, %v", l, ok)
	}
	if _, ok := contact(Rect{0, 0, 1, 1}, Rect{2, 0, 1, 1}); ok {
		t.Error("non-adjacent cells reported in contact")
	}
	// Diagonal corner touch is not a contact.
	if _, ok := contact(Rect{0, 0, 1, 1}, Rect{1, 1, 1, 1}); ok {
		t.Error("corner touch reported as contact")
	}
}

// TestSuperpositionLinearModel: with constant silicon conductivity the RC
// network is linear, so steady-state temperature rises superpose:
// rise(P1+P2) = rise(P1) + rise(P2), cell by cell.
func TestSuperpositionLinearModel(t *testing.T) {
	si := UniformGrid(3e-3, 3e-3, 5, 5)
	cu := UniformGrid(3e-3, 3e-3, 5, 5)
	opt := DefaultOptions()
	opt.Props.SiKExp = 0 // linear conduction
	build := func() *Model {
		m, err := NewModel(si, cu, opt)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	steady := func(m *Model) []float64 {
		if _, err := m.SteadyState(1e-11, 200000); err != nil {
			t.Fatal(err)
		}
		return m.Temps()
	}
	m1 := build()
	m1.SetPower(3, 0.05)
	t1 := steady(m1)
	m2 := build()
	m2.SetPower(17, 0.08)
	t2 := steady(m2)
	m12 := build()
	m12.SetPower(3, 0.05)
	m12.SetPower(17, 0.08)
	t12 := steady(m12)
	for i := range t12 {
		want := (t1[i] - 300) + (t2[i] - 300)
		got := t12[i] - 300
		if math.Abs(got-want) > 1e-5 {
			t.Fatalf("cell %d: superposed rise %.8f, combined rise %.8f", i, want, got)
		}
	}
	// The non-linear model must break superposition (sanity that the test
	// would catch a linear implementation masquerading as non-linear).
	optNL := DefaultOptions()
	buildNL := func() *Model {
		m, err := NewModel(si, cu, optNL)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	n1 := buildNL()
	n1.SetPower(3, 2.0)
	nt1 := steady(n1)
	n2 := buildNL()
	n2.SetPower(17, 2.0)
	nt2 := steady(n2)
	n12 := buildNL()
	n12.SetPower(3, 2.0)
	n12.SetPower(17, 2.0)
	nt12 := steady(n12)
	broke := false
	for i := range nt12 {
		want := (nt1[i] - 300) + (nt2[i] - 300)
		if math.Abs((nt12[i]-300)-want) > 0.05 {
			broke = true
			break
		}
	}
	if !broke {
		t.Error("non-linear model superposed perfectly; conductivity law inert?")
	}
}

// TestSteadyStateNoConvergenceSentinel pins the error contract: an exhausted
// sweep budget returns an error matching ErrNoConvergence via errors.Is, so
// callers can branch on it rather than parse a formatted string, and the
// reported sweep count equals the budget.
func TestSteadyStateNoConvergenceSentinel(t *testing.T) {
	m := singleColumn(t, 1e-6)
	m.SetPower(0, 0.5)
	sweeps, err := m.SteadyState(1e-12, 3)
	if err == nil {
		t.Fatal("expected non-convergence with a 3-sweep budget at tol 1e-12")
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("errors.Is(err, ErrNoConvergence) = false for %v", err)
	}
	if sweeps != 3 {
		t.Errorf("sweeps = %d, want the exhausted budget 3", sweeps)
	}

	// A generous budget must converge and not report the sentinel.
	m.Reset()
	if _, err := m.SteadyState(1e-6, 500); err != nil {
		t.Fatalf("expected convergence, got %v", err)
	}
}
