package tm

// PolicyState is the checkpointable state of a stateful thermal-management
// policy. It is a superset: each policy uses the fields it needs and leaves
// the rest zero.
type PolicyState struct {
	Throttled  bool   // ThresholdDFS: currently holding the low frequency
	LastFreqHz uint64 // ProportionalDFS: last frequency requested
	Switches   int    // DFS transitions performed
}

// Checkpointable is implemented by policies with internal state that must
// survive a checkpoint/resume cycle. Stateless policies (NullPolicy) need
// not implement it.
type Checkpointable interface {
	CheckpointState() PolicyState
	RestoreCheckpoint(PolicyState)
}

// CheckpointState implements Checkpointable.
func (p *ThresholdDFS) CheckpointState() PolicyState {
	return PolicyState{Throttled: p.throttled, Switches: p.Switches}
}

// RestoreCheckpoint implements Checkpointable.
func (p *ThresholdDFS) RestoreCheckpoint(s PolicyState) {
	p.throttled = s.Throttled
	p.Switches = s.Switches
}

// CheckpointState implements Checkpointable.
func (p *ProportionalDFS) CheckpointState() PolicyState {
	return PolicyState{LastFreqHz: p.last, Switches: p.Switches}
}

// RestoreCheckpoint implements Checkpointable.
func (p *ProportionalDFS) RestoreCheckpoint(s PolicyState) {
	p.last = s.LastFreqHz
	p.Switches = s.Switches
}
