// Package tm implements run-time thermal management for the emulated MPSoC
// (Section 7 of the DAC'06 paper): temperature sensors fed by the SW
// thermal library inform the VPCM, which applies dynamic frequency scaling
// (DFS) according to a policy.
//
// The paper's policy is a simple dual-state machine that monitors whether
// any component's temperature rises above 350 K or falls below 340 K and
// switches the platform between 500 MHz and 100 MHz accordingly. The
// package also provides a proportional policy as an exploration extension
// (the paper explicitly positions the framework as a vehicle for exploring
// "complex thermal management policies").
package tm

import (
	"fmt"
	"math"
)

// Sensor is one temperature sensor reading, attached to a floorplan
// component (SENSOR 1..N inputs of the VPCM).
type Sensor struct {
	Name  string
	TempK float64
}

// Action is what a policy asks the VPCM to do after a sensor update.
// A zero Action means "no change".
type Action struct {
	SetFreqHz uint64 // new virtual clock frequency; 0 = keep
}

// Policy decides thermal-management actions from sensor readings.
type Policy interface {
	Name() string
	Update(sensors []Sensor) Action
}

// NullPolicy performs no thermal management (the "without TM" curves of
// Figure 6).
type NullPolicy struct{}

// Name implements Policy.
func (NullPolicy) Name() string { return "none" }

// Update implements Policy.
func (NullPolicy) Update([]Sensor) Action { return Action{} }

// ThresholdDFS is the paper's dual-state policy: when any sensor exceeds
// HighK the platform drops to LowFreqHz; once every sensor is back below
// LowK it returns to HighFreqHz. The gap between the two thresholds is the
// hysteresis that prevents oscillation.
type ThresholdDFS struct {
	HighK      float64
	LowK       float64
	HighFreqHz uint64
	LowFreqHz  uint64
	throttled  bool
	Switches   int // DFS transitions performed
}

// NewThresholdDFS returns the policy with the paper's parameters:
// thresholds 350 K / 340 K, frequencies 500 MHz / 100 MHz.
func NewThresholdDFS() *ThresholdDFS {
	return &ThresholdDFS{HighK: 350, LowK: 340, HighFreqHz: 500e6, LowFreqHz: 100e6}
}

// Name implements Policy.
func (p *ThresholdDFS) Name() string {
	return fmt.Sprintf("threshold-dfs(%.0fK/%.0fK,%d/%dMHz)",
		p.HighK, p.LowK, p.HighFreqHz/1e6, p.LowFreqHz/1e6)
}

// Throttled reports whether the policy currently holds the low frequency.
func (p *ThresholdDFS) Throttled() bool { return p.throttled }

// Update implements Policy.
func (p *ThresholdDFS) Update(sensors []Sensor) Action {
	anyHot, allCool := false, true
	for _, s := range sensors {
		if s.TempK > p.HighK {
			anyHot = true
		}
		if s.TempK >= p.LowK {
			allCool = false
		}
	}
	switch {
	case !p.throttled && anyHot:
		p.throttled = true
		p.Switches++
		return Action{SetFreqHz: p.LowFreqHz}
	case p.throttled && allCool:
		p.throttled = false
		p.Switches++
		return Action{SetFreqHz: p.HighFreqHz}
	}
	return Action{}
}

// ProportionalDFS is an exploration extension: it scales frequency linearly
// between MinFreqHz (at or above HighK) and MaxFreqHz (at or below LowK),
// quantised to Steps levels to model a realistic clock divider.
type ProportionalDFS struct {
	HighK     float64
	LowK      float64
	MaxFreqHz uint64
	MinFreqHz uint64
	Steps     int
	last      uint64
	Switches  int
}

// NewProportionalDFS returns a 5-step proportional policy over the same
// band as the paper's threshold policy.
func NewProportionalDFS() *ProportionalDFS {
	return &ProportionalDFS{HighK: 350, LowK: 340, MaxFreqHz: 500e6, MinFreqHz: 100e6, Steps: 5}
}

// Name implements Policy.
func (p *ProportionalDFS) Name() string { return "proportional-dfs" }

// Update implements Policy.
func (p *ProportionalDFS) Update(sensors []Sensor) Action {
	var max float64
	for _, s := range sensors {
		if s.TempK > max {
			max = s.TempK
		}
	}
	frac := (p.HighK - max) / (p.HighK - p.LowK) // 1 at LowK, 0 at HighK
	if frac < 0 {
		frac = 0
	} else if frac > 1 {
		frac = 1
	}
	steps := p.Steps - 1
	level := int(frac*float64(steps) + 0.5)
	hz := p.MinFreqHz + uint64(level)*(p.MaxFreqHz-p.MinFreqHz)/uint64(steps)
	if hz == p.last {
		return Action{}
	}
	p.last = hz
	p.Switches++
	return Action{SetFreqHz: hz}
}

// SensorModel models a physical on-die temperature sensor: the reading
// handed to the VPCM is the true cell temperature plus a static offset,
// quantised to the sensor's step (FPGA-attached sensors deliver a few
// fixed-point bits, not ideal floats). The zero value is an ideal sensor.
type SensorModel struct {
	StepK   float64 // quantisation step (0 = continuous)
	OffsetK float64 // static calibration error
}

// Read converts a true temperature into the sensor's reading.
func (m SensorModel) Read(trueK float64) float64 {
	v := trueK + m.OffsetK
	if m.StepK > 0 {
		steps := math.Floor(v/m.StepK + 0.5)
		v = steps * m.StepK
	}
	return v
}
