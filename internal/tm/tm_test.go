package tm

import (
	"strings"
	"testing"
	"testing/quick"
)

func sensors(temps ...float64) []Sensor {
	out := make([]Sensor, len(temps))
	for i, t := range temps {
		out[i] = Sensor{Name: "s", TempK: t}
	}
	return out
}

func TestNullPolicy(t *testing.T) {
	var p NullPolicy
	if a := p.Update(sensors(400, 500)); a.SetFreqHz != 0 {
		t.Errorf("null policy acted: %+v", a)
	}
	if p.Name() != "none" {
		t.Error("name")
	}
}

func TestThresholdDFSPaperBehaviour(t *testing.T) {
	p := NewThresholdDFS()
	// Below both thresholds: nothing happens.
	if a := p.Update(sensors(320, 330)); a.SetFreqHz != 0 {
		t.Errorf("acted while cool: %+v", a)
	}
	// One component crosses 350 K: throttle to 100 MHz.
	a := p.Update(sensors(351, 330))
	if a.SetFreqHz != 100e6 {
		t.Fatalf("expected 100 MHz, got %d", a.SetFreqHz)
	}
	if !p.Throttled() {
		t.Error("not throttled")
	}
	// Still above the low threshold: stay throttled (hysteresis).
	if a := p.Update(sensors(345, 341)); a.SetFreqHz != 0 {
		t.Errorf("acted inside hysteresis band: %+v", a)
	}
	// All drop below 340 K: back to 500 MHz.
	a = p.Update(sensors(339, 335))
	if a.SetFreqHz != 500e6 {
		t.Fatalf("expected 500 MHz, got %d", a.SetFreqHz)
	}
	if p.Switches != 2 {
		t.Errorf("switches = %d", p.Switches)
	}
}

func TestThresholdDFSBoundaryConditions(t *testing.T) {
	p := NewThresholdDFS()
	// Exactly 350 K is not "above".
	if a := p.Update(sensors(350)); a.SetFreqHz != 0 {
		t.Error("acted at exactly the high threshold")
	}
	p.Update(sensors(350.001)) // throttle
	// Exactly 340 K is not "below".
	if a := p.Update(sensors(340)); a.SetFreqHz != 0 {
		t.Error("released at exactly the low threshold")
	}
	if a := p.Update(sensors(339.999)); a.SetFreqHz != 500e6 {
		t.Error("did not release below the low threshold")
	}
}

func TestThresholdDFSNoRepeatedActions(t *testing.T) {
	p := NewThresholdDFS()
	p.Update(sensors(360))
	// Hotter still: no second action while already throttled.
	if a := p.Update(sensors(380)); a.SetFreqHz != 0 {
		t.Error("re-throttled")
	}
	if p.Switches != 1 {
		t.Errorf("switches = %d", p.Switches)
	}
}

// Property: the dual-state machine never emits two identical consecutive
// frequency commands, regardless of the temperature trajectory.
func TestThresholdDFSAlternatesQuick(t *testing.T) {
	f := func(temps []uint16) bool {
		p := NewThresholdDFS()
		var last uint64
		for _, raw := range temps {
			tk := 300 + float64(raw%120) // 300..419 K
			a := p.Update(sensors(tk))
			if a.SetFreqHz != 0 {
				if a.SetFreqHz == last {
					return false
				}
				last = a.SetFreqHz
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProportionalDFS(t *testing.T) {
	p := NewProportionalDFS()
	// Cool: full speed.
	a := p.Update(sensors(300))
	if a.SetFreqHz != 500e6 {
		t.Errorf("cool freq = %d", a.SetFreqHz)
	}
	// Hot: minimum speed.
	a = p.Update(sensors(360))
	if a.SetFreqHz != 100e6 {
		t.Errorf("hot freq = %d", a.SetFreqHz)
	}
	// Mid-band: something in between.
	a = p.Update(sensors(345))
	if a.SetFreqHz <= 100e6 || a.SetFreqHz >= 500e6 {
		t.Errorf("mid freq = %d", a.SetFreqHz)
	}
	// Same reading: no redundant action.
	if a := p.Update(sensors(345)); a.SetFreqHz != 0 {
		t.Error("redundant action")
	}
}

func TestPolicyNames(t *testing.T) {
	if !strings.Contains(NewThresholdDFS().Name(), "350K") {
		t.Errorf("name = %q", NewThresholdDFS().Name())
	}
	if NewProportionalDFS().Name() == "" {
		t.Error("empty name")
	}
}

func TestSensorModel(t *testing.T) {
	ideal := SensorModel{}
	if got := ideal.Read(345.678); got != 345.678 {
		t.Errorf("ideal sensor altered reading: %v", got)
	}
	quant := SensorModel{StepK: 0.5}
	if got := quant.Read(345.678); got != 345.5 {
		t.Errorf("quantised = %v, want 345.5", got)
	}
	if got := quant.Read(345.80); got != 346.0 {
		t.Errorf("quantised = %v, want 346.0", got)
	}
	offs := SensorModel{StepK: 1, OffsetK: -2}
	if got := offs.Read(350.4); got != 348.0 {
		t.Errorf("offset+quantised = %v, want 348", got)
	}
}

func TestQuantisedSensorsStillDriveThresholds(t *testing.T) {
	// With a 1 K sensor step, 350.4 K reads as exactly 350 K — not above
	// the threshold, so the policy must hold; 350.6 K reads as 351 K and
	// must trip it. Quantisation shifts the effective trip point but never
	// deadlocks the machine.
	p := NewThresholdDFS()
	s := SensorModel{StepK: 1}
	if a := p.Update(sensors(s.Read(350.4))); a.SetFreqHz != 0 {
		t.Error("reading of exactly 350 K tripped the >350 K threshold")
	}
	if a := p.Update(sensors(s.Read(350.6))); a.SetFreqHz != 100e6 {
		t.Error("reading of 351 K did not trip the threshold")
	}
}
