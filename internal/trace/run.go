package trace

import (
	"encoding/json"
	"io"

	"thermemu/internal/core"
	"thermemu/internal/floorplan"
	"thermemu/internal/golden"
)

// RunSummary is the structured per-run result document: the scalar outcome
// of one co-emulation (final temperatures, throughput, digest, thermal lag)
// in a stable JSON shape. cmd/thermemu -json emits it and the sweep worker
// protocol ships it back to the coordinator, so a run's result is the same
// object whether it ran standalone or as one point of a grid.
type RunSummary struct {
	Workload      string             `json:"workload"`
	Cycles        uint64             `json:"cycles"`
	VirtualS      float64            `json:"virtual_s"`
	WallS         float64            `json:"wall_s"`
	Windows       int                `json:"windows"`
	WindowsPerS   float64            `json:"windows_per_s"`
	MaxTempK      float64            `json:"max_temp_k"`
	FinalTempK    map[string]float64 `json:"final_temp_k,omitempty"`
	DFSEvents     int                `json:"dfs_events"`
	ThermalLagPs  uint64             `json:"thermal_lag_ps"`
	Digest        string             `json:"digest,omitempty"`
	DigestRecords int                `json:"digest_records,omitempty"`
	Done          bool               `json:"done"`
	Partial       bool               `json:"partial"`
}

// NewRunSummary condenses a finished run. windows is the committed sampling
// window count (len(res.Samples) unless samples were discarded); tr may be
// nil when no digest was accumulated.
func NewRunSummary(workload string, fp *floorplan.Floorplan, res *core.Result, windows int, tr *golden.Trace) RunSummary {
	sum := RunSummary{
		Workload:     workload,
		Cycles:       res.Cycles,
		VirtualS:     res.VirtualS,
		WallS:        res.Wall.Seconds(),
		Windows:      windows,
		MaxTempK:     res.MaxTempK,
		DFSEvents:    res.DFSEvents,
		ThermalLagPs: res.ThermalLagPs,
		Done:         res.Done,
		Partial:      res.Partial,
	}
	if res.Wall > 0 {
		sum.WindowsPerS = float64(windows) / res.Wall.Seconds()
	}
	if tr != nil {
		sum.Digest = tr.Hex()
		sum.DigestRecords = tr.Len()
	}
	if n := len(res.Samples); n > 0 && fp != nil {
		last := res.Samples[n-1]
		sum.FinalTempK = map[string]float64{}
		for i, c := range fp.Components {
			if i < len(last.CompTempK) {
				sum.FinalTempK[c.Name] = last.CompTempK[i]
			}
		}
	}
	return sum
}

// WriteRunJSON writes the full structured run document: the run summary
// plus the per-window sample series of WriteSamplesJSON. Documents written
// by WriteSamplesJSON (no "run" key) stay readable by the same consumers —
// the decoder ignores unknown fields in both directions.
func WriteRunJSON(w io.Writer, fp *floorplan.Floorplan, sum RunSummary, samples []core.Sample) error {
	run := jsonRun{Floorplan: fp.Name, Run: &sum}
	for _, s := range samples {
		run.Samples = append(run.Samples, makeJSONSample(fp, s))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(run)
}
