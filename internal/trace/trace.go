// Package trace exports co-emulation runs as standard engineering
// artifacts: VCD waveforms (viewable in GTKWave and any EDA waveform
// browser) and JSON sample records. The paper's framework exists to
// "rapidly extract a number of critical statistics"; this package gives
// those statistics the file formats the rest of an EDA flow expects.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"thermemu/internal/core"
	"thermemu/internal/floorplan"
	"thermemu/internal/sniffer"
)

// ---------------------------------------------------------------------------
// VCD
// ---------------------------------------------------------------------------

// vcdIDs yields compact VCD identifier codes (!, ", #, ... then pairs).
func vcdID(i int) string {
	const first, last = 33, 126 // printable ASCII range per the VCD spec
	n := last - first + 1
	if i < n {
		return string(rune(first + i))
	}
	return string(rune(first+i/n-1)) + string(rune(first+i%n))
}

// vcdVar is one declared waveform variable.
type vcdVar struct {
	name string
	kind string // "real" or "wire"
	id   string
}

// VCDWriter emits a Value Change Dump incrementally.
type VCDWriter struct {
	w      io.Writer
	vars   []vcdVar
	byName map[string]int
	header bool
	last   map[string]string // dedup identical consecutive values
	err    error
}

// NewVCD creates a writer targeting w with picosecond timescale.
func NewVCD(w io.Writer) *VCDWriter {
	return &VCDWriter{w: w, byName: map[string]int{}, last: map[string]string{}}
}

// AddReal declares a real-valued variable; must precede the first Time call.
func (v *VCDWriter) AddReal(name string) {
	v.add(name, "real")
}

// AddWire declares a 1-bit variable; must precede the first Time call.
func (v *VCDWriter) AddWire(name string) {
	v.add(name, "wire")
}

func (v *VCDWriter) add(name, kind string) {
	if v.header {
		v.err = fmt.Errorf("trace: variable %q declared after the header was emitted", name)
		return
	}
	if _, dup := v.byName[name]; dup {
		v.err = fmt.Errorf("trace: duplicate variable %q", name)
		return
	}
	v.byName[name] = len(v.vars)
	v.vars = append(v.vars, vcdVar{name: name, kind: kind, id: vcdID(len(v.vars))})
}

func (v *VCDWriter) emitHeader() {
	if v.header || v.err != nil {
		return
	}
	v.header = true
	fmt.Fprintf(v.w, "$date thermemu $end\n$version thermemu co-emulation trace $end\n")
	fmt.Fprintf(v.w, "$timescale 1ps $end\n$scope module thermemu $end\n")
	for _, vv := range v.vars {
		width := 1
		kind := vv.kind
		if kind == "real" {
			width = 64
		}
		fmt.Fprintf(v.w, "$var %s %d %s %s $end\n", kind, width, vv.id, sanitise(vv.name))
	}
	fmt.Fprintf(v.w, "$upscope $end\n$enddefinitions $end\n")
}

func sanitise(name string) string {
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' {
			return '_'
		}
		return r
	}, name)
}

// Time starts a new timestamp (picoseconds). Values set afterwards belong to
// this time until the next call.
func (v *VCDWriter) Time(ps uint64) {
	v.emitHeader()
	if v.err != nil {
		return
	}
	fmt.Fprintf(v.w, "#%d\n", ps)
}

// SetReal records a real variable's value at the current time.
func (v *VCDWriter) SetReal(name string, val float64) {
	v.set(name, fmt.Sprintf("r%g", val))
}

// SetBit records a wire's value at the current time.
func (v *VCDWriter) SetBit(name string, bit bool) {
	s := "0"
	if bit {
		s = "1"
	}
	v.set(name, s)
}

func (v *VCDWriter) set(name, encoded string) {
	if v.err != nil {
		return
	}
	i, ok := v.byName[name]
	if !ok {
		v.err = fmt.Errorf("trace: undeclared variable %q", name)
		return
	}
	if v.last[name] == encoded {
		return
	}
	v.last[name] = encoded
	if strings.HasPrefix(encoded, "r") {
		fmt.Fprintf(v.w, "%s %s\n", encoded, v.vars[i].id)
	} else {
		fmt.Fprintf(v.w, "%s%s\n", encoded, v.vars[i].id)
	}
}

// Err returns the first error encountered.
func (v *VCDWriter) Err() error { return v.err }

// WriteSamplesVCD dumps a co-emulation sample series as a VCD waveform:
// clock frequency, throttle state, peak temperature, per-component
// temperature and power.
func WriteSamplesVCD(w io.Writer, fp *floorplan.Floorplan, samples []core.Sample) error {
	v := NewVCD(w)
	v.AddReal("freq_mhz")
	v.AddWire("throttled")
	v.AddReal("max_temp_k")
	for _, c := range fp.Components {
		v.AddReal("temp_" + c.Name + "_k")
		v.AddReal("power_" + c.Name + "_w")
	}
	for _, s := range samples {
		v.Time(s.TimePs)
		v.SetReal("freq_mhz", float64(s.FreqHz)/1e6)
		v.SetBit("throttled", s.Throttled)
		v.SetReal("max_temp_k", s.MaxTempK)
		for i, c := range fp.Components {
			if i < len(s.CompTempK) {
				v.SetReal("temp_"+c.Name+"_k", s.CompTempK[i])
			}
			if i < len(s.CompPowerW) {
				v.SetReal("power_"+c.Name+"_w", s.CompPowerW[i])
			}
		}
	}
	return v.Err()
}

// WriteEventsVCD dumps an event-sniffer log as per-source activity wires:
// each event toggles its source's wire, giving a waveform of memory-system
// activity over virtual cycles (the timescale is one cycle per VCD tick).
func WriteEventsVCD(w io.Writer, sources []string, events []sniffer.Event) error {
	v := NewVCD(w)
	for _, s := range sources {
		v.AddWire("ev_" + s)
	}
	state := make([]bool, len(sources))
	lastCycle := ^uint64(0)
	for _, ev := range events {
		if int(ev.Source) >= len(sources) {
			return fmt.Errorf("trace: event source %d out of range", ev.Source)
		}
		if ev.Cycle != lastCycle {
			v.Time(ev.Cycle)
			lastCycle = ev.Cycle
		}
		state[ev.Source] = !state[ev.Source]
		v.SetBit("ev_"+sources[ev.Source], state[ev.Source])
	}
	return v.Err()
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

// jsonSample is the JSON wire form of one sampling window.
type jsonSample struct {
	TimeS     float64            `json:"time_s"`
	Cycle     uint64             `json:"cycle"`
	FreqMHz   float64            `json:"freq_mhz"`
	MaxTempK  float64            `json:"max_temp_k"`
	Throttled bool               `json:"throttled"`
	TempK     map[string]float64 `json:"temp_k"`
	PowerW    map[string]float64 `json:"power_w"`
}

// jsonRun is the JSON wire form of a whole run. Run is the structured
// summary (WriteRunJSON); WriteSamplesJSON leaves it out.
type jsonRun struct {
	Floorplan string       `json:"floorplan"`
	Run       *RunSummary  `json:"run,omitempty"`
	Samples   []jsonSample `json:"samples"`
}

// makeJSONSample converts one sample to its wire form, keyed by the
// floorplan's component names.
func makeJSONSample(fp *floorplan.Floorplan, s core.Sample) jsonSample {
	js := jsonSample{
		TimeS:     float64(s.TimePs) * 1e-12,
		Cycle:     s.Cycle,
		FreqMHz:   float64(s.FreqHz) / 1e6,
		MaxTempK:  s.MaxTempK,
		Throttled: s.Throttled,
		TempK:     map[string]float64{},
		PowerW:    map[string]float64{},
	}
	for i, c := range fp.Components {
		if i < len(s.CompTempK) {
			js.TempK[c.Name] = s.CompTempK[i]
		}
		if i < len(s.CompPowerW) {
			js.PowerW[c.Name] = s.CompPowerW[i]
		}
	}
	return js
}

// WriteSamplesJSON dumps a sample series as a self-describing JSON document
// keyed by component names.
func WriteSamplesJSON(w io.Writer, fp *floorplan.Floorplan, samples []core.Sample) error {
	run := jsonRun{Floorplan: fp.Name}
	for _, s := range samples {
		run.Samples = append(run.Samples, makeJSONSample(fp, s))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(run)
}

// ReadSamplesJSON parses a document written by WriteSamplesJSON. Component
// values come back as sorted (name, value) pairs per sample, suitable for
// downstream analysis tools.
func ReadSamplesJSON(r io.Reader) (floorplanName string, samples []map[string]float64, err error) {
	var run jsonRun
	if err := json.NewDecoder(r).Decode(&run); err != nil {
		return "", nil, err
	}
	out := make([]map[string]float64, 0, len(run.Samples))
	for _, s := range run.Samples {
		m := map[string]float64{
			"time_s": s.TimeS, "freq_mhz": s.FreqMHz, "max_temp_k": s.MaxTempK,
		}
		keys := make([]string, 0, len(s.TempK))
		for k := range s.TempK {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			m["temp_"+k] = s.TempK[k]
		}
		out = append(out, m)
	}
	return run.Floorplan, out, nil
}
