package trace

import (
	"bytes"
	"strings"
	"testing"

	"thermemu/internal/core"
	"thermemu/internal/emu"
	"thermemu/internal/floorplan"
	"thermemu/internal/sniffer"
	"thermemu/internal/thermal"
	"thermemu/internal/tm"
	"thermemu/internal/workloads"
)

// runSamples produces a small real co-emulation sample series.
func runSamples(t *testing.T) (*floorplan.Floorplan, []core.Sample) {
	t.Helper()
	fp, res := runResult(t)
	return fp, res.Samples
}

// runResult produces a small real co-emulation result.
func runResult(t *testing.T) (*floorplan.Floorplan, *core.Result) {
	t.Helper()
	pcfg := emu.DefaultConfig(2)
	pcfg.FreqHz = 500e6
	spec, err := workloads.Matrix(2, 8, 12, pcfg.PrivKB)
	if err != nil {
		t.Fatal(err)
	}
	fp := floorplan.FourARM11()
	host, err := core.NewThermalHost(fp, 28, thermal.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(core.Config{
		Platform: pcfg, Workload: spec, Host: host,
		WindowPs: 10_000_000, ThermalTimeScale: 5000,
		Policy: &tm.ThresholdDFS{HighK: 305, LowK: 303, HighFreqHz: 500e6, LowFreqHz: 100e6},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Samples) < 2 {
		t.Fatalf("only %d samples", len(res.Samples))
	}
	return fp, res
}

func TestWriteSamplesVCD(t *testing.T) {
	fp, samples := runSamples(t)
	var buf bytes.Buffer
	if err := WriteSamplesVCD(&buf, fp, samples); err != nil {
		t.Fatal(err)
	}
	vcd := buf.String()
	for _, want := range []string{
		"$timescale 1ps $end",
		"$var real 64", "freq_mhz", "max_temp_k", "temp_core0_k", "power_core0_w",
		"$var wire 1", "throttled",
		"$enddefinitions $end",
		"#", // at least one timestamp
	} {
		if !strings.Contains(vcd, want) {
			t.Errorf("VCD missing %q", want)
		}
	}
	// Timestamps are monotone.
	lastTime := int64(-1)
	for _, line := range strings.Split(vcd, "\n") {
		if strings.HasPrefix(line, "#") {
			var ts int64
			if _, err := fmtSscan(line[1:], &ts); err != nil {
				t.Fatalf("bad timestamp line %q", line)
			}
			if ts <= lastTime {
				t.Fatalf("non-monotone timestamp %d after %d", ts, lastTime)
			}
			lastTime = ts
		}
	}
	// Real value change lines reference declared ids.
	if !strings.Contains(vcd, "r") {
		t.Error("no real value changes")
	}
}

func fmtSscan(s string, v *int64) (int, error) {
	n := 0
	var x int64
	for ; n < len(s) && s[n] >= '0' && s[n] <= '9'; n++ {
		x = x*10 + int64(s[n]-'0')
	}
	if n == 0 {
		return 0, strings.NewReader("").UnreadByte()
	}
	*v = x
	return n, nil
}

func TestVCDDedupsUnchangedValues(t *testing.T) {
	var buf bytes.Buffer
	v := NewVCD(&buf)
	v.AddReal("x")
	v.Time(1)
	v.SetReal("x", 5)
	v.Time(2)
	v.SetReal("x", 5) // unchanged: no line
	v.Time(3)
	v.SetReal("x", 6)
	if err := v.Err(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "r5 "); got != 1 {
		t.Errorf("value 5 emitted %d times", got)
	}
	if got := strings.Count(buf.String(), "r6 "); got != 1 {
		t.Errorf("value 6 emitted %d times", got)
	}
}

func TestVCDErrors(t *testing.T) {
	v := NewVCD(&bytes.Buffer{})
	v.AddReal("a")
	v.AddReal("a") // duplicate
	if v.Err() == nil {
		t.Error("duplicate variable accepted")
	}
	v2 := NewVCD(&bytes.Buffer{})
	v2.AddReal("a")
	v2.Time(0)
	v2.AddReal("late")
	if v2.Err() == nil {
		t.Error("late declaration accepted")
	}
	v3 := NewVCD(&bytes.Buffer{})
	v3.Time(0)
	v3.SetReal("ghost", 1)
	if v3.Err() == nil {
		t.Error("undeclared variable accepted")
	}
}

func TestVCDIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		seen[id] = true
	}
}

func TestWriteEventsVCD(t *testing.T) {
	events := []sniffer.Event{
		{Cycle: 10, Source: 0, Kind: sniffer.EvMemRead},
		{Cycle: 10, Source: 1, Kind: sniffer.EvFetch},
		{Cycle: 12, Source: 0, Kind: sniffer.EvMemWrite},
	}
	var buf bytes.Buffer
	if err := WriteEventsVCD(&buf, []string{"core0", "core1"}, events); err != nil {
		t.Fatal(err)
	}
	vcd := buf.String()
	if !strings.Contains(vcd, "ev_core0") || !strings.Contains(vcd, "ev_core1") {
		t.Errorf("missing wires:\n%s", vcd)
	}
	if !strings.Contains(vcd, "#10") || !strings.Contains(vcd, "#12") {
		t.Errorf("missing timestamps:\n%s", vcd)
	}
	// Out-of-range source rejected.
	bad := []sniffer.Event{{Cycle: 1, Source: 9}}
	if err := WriteEventsVCD(&bytes.Buffer{}, []string{"only"}, bad); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestSamplesJSONRoundTrip(t *testing.T) {
	fp, samples := runSamples(t)
	var buf bytes.Buffer
	if err := WriteSamplesJSON(&buf, fp, samples); err != nil {
		t.Fatal(err)
	}
	name, rows, err := ReadSamplesJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != fp.Name {
		t.Errorf("floorplan name = %q", name)
	}
	if len(rows) != len(samples) {
		t.Fatalf("rows = %d, want %d", len(rows), len(samples))
	}
	for i, row := range rows {
		if row["max_temp_k"] != samples[i].MaxTempK {
			t.Errorf("row %d max temp = %v, want %v", i, row["max_temp_k"], samples[i].MaxTempK)
		}
		if _, ok := row["temp_core0"]; !ok {
			t.Errorf("row %d missing component temperature", i)
		}
	}
}

// TestRunJSONSummary checks the structured -json document: the run summary
// rides alongside the sample series, and samples-only consumers
// (ReadSamplesJSON) still read the same document.
func TestRunJSONSummary(t *testing.T) {
	fp, res := runResult(t)
	sum := NewRunSummary("matrix", fp, res, len(res.Samples), nil)
	if sum.Cycles != res.Cycles || sum.Windows != len(res.Samples) || !sum.Done {
		t.Fatalf("summary scalars: %+v", sum)
	}
	if sum.MaxTempK != res.MaxTempK || sum.ThermalLagPs != res.ThermalLagPs {
		t.Fatalf("summary thermal fields: %+v", sum)
	}
	last := res.Samples[len(res.Samples)-1]
	if len(sum.FinalTempK) != len(fp.Components) {
		t.Fatalf("final temps cover %d of %d components", len(sum.FinalTempK), len(fp.Components))
	}
	if sum.FinalTempK[fp.Components[0].Name] != last.CompTempK[0] {
		t.Errorf("final temp of %s = %v, want %v",
			fp.Components[0].Name, sum.FinalTempK[fp.Components[0].Name], last.CompTempK[0])
	}

	var buf bytes.Buffer
	if err := WriteRunJSON(&buf, fp, sum, res.Samples); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	for _, want := range []string{`"run"`, `"workload": "matrix"`, `"windows"`, `"thermal_lag_ps"`, `"final_temp_k"`} {
		if !strings.Contains(doc, want) {
			t.Errorf("run document missing %s", want)
		}
	}
	name, rows, err := ReadSamplesJSON(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("samples-only reader rejected the run document: %v", err)
	}
	if name != fp.Name || len(rows) != len(res.Samples) {
		t.Fatalf("samples-only view: floorplan %q, %d rows", name, len(rows))
	}
}
