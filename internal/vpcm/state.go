package vpcm

import (
	"fmt"
	"sort"
)

// SourceCycles attributes suppression cycles to a named source in a
// checkpointable (deterministically ordered) form.
type SourceCycles struct {
	Source string
	Cycles uint64
}

// SourcePs attributes frozen picoseconds to a named source.
type SourcePs struct {
	Source string
	Ps     uint64
}

// State is the complete checkpointable clock state. Maps are flattened to
// slices sorted by source name so two saves of the same clock are
// structurally identical. Held freezes are deliberately absent: checkpoints
// are taken at window boundaries where the loop is quiescent and no source
// holds the virtual clock frozen.
type State struct {
	PhysHz      uint64
	VirtHz      uint64
	Cycle       uint64
	TimePs      uint64
	WallPs      uint64
	FrozenPs    uint64
	Suppression []SourceCycles
	FrozenBySrc []SourcePs
	History     []FreqChange
}

// SaveState captures the clock for checkpointing.
func (v *VPCM) SaveState() State {
	s := State{
		PhysHz:   v.physHz,
		VirtHz:   v.virtHz,
		Cycle:    v.cycle,
		TimePs:   v.timePs,
		History:  append([]FreqChange(nil), v.history...),
		FrozenPs: v.FrozenPs(),
	}
	v.suppMu.Lock()
	s.WallPs = v.wallPs
	s.Suppression = make([]SourceCycles, 0, len(v.suppress))
	for src, c := range v.suppress {
		s.Suppression = append(s.Suppression, SourceCycles{src, c})
	}
	v.suppMu.Unlock()
	sort.Slice(s.Suppression, func(i, j int) bool {
		return s.Suppression[i].Source < s.Suppression[j].Source
	})
	v.freezeMu.Lock()
	s.FrozenBySrc = make([]SourcePs, 0, len(v.frozenBySrc))
	for src, ps := range v.frozenBySrc {
		s.FrozenBySrc = append(s.FrozenBySrc, SourcePs{src, ps})
	}
	v.freezeMu.Unlock()
	sort.Slice(s.FrozenBySrc, func(i, j int) bool {
		return s.FrozenBySrc[i].Source < s.FrozenBySrc[j].Source
	})
	return s
}

// RestoreState rewinds the clock to a saved state. The physical oscillator
// frequency is construction-time configuration, so a mismatch means the
// checkpoint belongs to a differently configured platform.
func (v *VPCM) RestoreState(s State) error {
	if s.PhysHz != v.physHz {
		return fmt.Errorf("vpcm: checkpoint physical clock %d Hz, platform has %d Hz", s.PhysHz, v.physHz)
	}
	if s.VirtHz == 0 {
		return fmt.Errorf("vpcm: checkpoint virtual frequency is zero")
	}
	if len(s.History) == 0 {
		return fmt.Errorf("vpcm: checkpoint has empty frequency history")
	}
	if last := s.History[len(s.History)-1].Hz; last != s.VirtHz {
		return fmt.Errorf("vpcm: history ends at %d Hz but virtual clock is %d Hz", last, s.VirtHz)
	}
	v.virtHz = s.VirtHz
	v.cycle = s.Cycle
	v.timePs = s.TimePs
	v.history = append([]FreqChange(nil), s.History...)
	v.frozen = make(map[string]bool)
	v.suppMu.Lock()
	v.wallPs = s.WallPs
	v.suppress = make(map[string]uint64, len(s.Suppression))
	v.suppTotal = 0
	for _, sc := range s.Suppression {
		v.suppress[sc.Source] = sc.Cycles
		v.suppTotal += sc.Cycles
	}
	v.suppMu.Unlock()
	v.freezeMu.Lock()
	v.frozenPs = s.FrozenPs
	v.frozenBySrc = make(map[string]uint64, len(s.FrozenBySrc))
	for _, sp := range s.FrozenBySrc {
		v.frozenBySrc[sp.Source] = sp.Ps
	}
	v.freezeMu.Unlock()
	return nil
}
