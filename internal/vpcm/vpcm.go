// Package vpcm implements the Virtual Platform Clock Manager (Section 4.2
// of the DAC'06 paper): the hardware element that generates the virtual
// clock domains of the emulated MPSoC from the physical FPGA oscillator.
//
// The VPCM receives three kinds of inputs:
//
//  1. the physical clock (the FPGA oscillator, 100 MHz in the paper);
//  2. VIRTUAL_CLK_SUPPRESSION signals from the memory controllers, raised
//     when a physical device backing an emulated memory cannot honour the
//     user-defined latency (e.g. board DDR standing in for a 10-cycle
//     SRAM) — the virtual clock freezes until the data is available;
//  3. SENSOR signals from the temperature sensors, which drive run-time
//     thermal-management actions such as dynamic frequency scaling (DFS).
//
// It also freezes the virtual clock when the Ethernet connection to the
// host saturates while downloading statistics. The combination lets the
// framework emulate, say, a 500 MHz MPSoC on 100 MHz FPGA hardware: with a
// 10 ms statistics sampling period and a 5× virtual/physical ratio, the
// framework samples every 50 ms of real execution but the thermal library
// analyses it as 10 ms of emulated time.
package vpcm

import (
	"fmt"
	"sort"
	"sync"
)

// picosPerSec converts clock periods to picoseconds. Frequencies that do
// not divide 1e12 evenly accumulate sub-picosecond rounding, negligible at
// the 10 ms sampling granularity of the framework.
const picosPerSec = 1_000_000_000_000

// ThermalLagSource is the frozen-time attribution used by the pipelined
// co-emulation loop when the bounded stats hand-off queue fills because the
// thermal solver (or the link behind it) cannot keep up: the virtual clock
// freezes instead of letting windows pile up, exactly like the Ethernet
// congestion freeze of Section 4.2.
const ThermalLagSource = "thermal-lag"

// FreqChange records one DFS event.
type FreqChange struct {
	Cycle  uint64 // virtual platform cycle of the change
	TimePs uint64 // virtual time of the change
	Hz     uint64
}

// VPCM manages the virtual clock of the emulated platform.
type VPCM struct {
	physHz uint64
	virtHz uint64
	cycle  uint64 // virtual platform cycles issued
	timePs uint64 // virtual time elapsed
	frozen map[string]bool
	// suppMu guards the suppression state: memory controllers may raise
	// suppression concurrently when the platform runs in parallel mode.
	suppMu    sync.Mutex
	suppress  map[string]uint64
	suppTotal uint64
	history   []FreqChange
	// wallPs estimates physical (FPGA wall-clock) time: virtual cycles at
	// the physical frequency plus suppression and freeze periods.
	wallPs   uint64
	frozenPs uint64
	// freezeMu guards the per-source frozen-time attribution: the link
	// layer may account resend stalls while observers read the totals.
	freezeMu    sync.Mutex
	frozenBySrc map[string]uint64
}

// New creates a VPCM with the given physical oscillator frequency and the
// initial virtual frequency of the emulated platform.
func New(physHz, virtHz uint64) *VPCM {
	if physHz == 0 || virtHz == 0 {
		panic("vpcm: frequencies must be positive")
	}
	v := &VPCM{physHz: physHz, virtHz: virtHz,
		frozen: make(map[string]bool), suppress: make(map[string]uint64)}
	v.history = append(v.history, FreqChange{Cycle: 0, TimePs: 0, Hz: virtHz})
	return v
}

// PhysHz returns the physical oscillator frequency.
func (v *VPCM) PhysHz() uint64 { return v.physHz }

// Frequency returns the current virtual clock frequency.
func (v *VPCM) Frequency() uint64 { return v.virtHz }

// SetFrequency performs dynamic frequency scaling on the virtual clock.
func (v *VPCM) SetFrequency(hz uint64) {
	if hz == 0 {
		panic("vpcm: cannot scale to 0 Hz")
	}
	if hz == v.virtHz {
		return
	}
	v.virtHz = hz
	v.history = append(v.history, FreqChange{Cycle: v.cycle, TimePs: v.timePs, Hz: hz})
}

// History returns every frequency change, oldest first (the initial
// frequency is entry 0).
func (v *VPCM) History() []FreqChange { return v.history }

// DFSEvents returns the number of frequency changes after reset.
func (v *VPCM) DFSEvents() int { return len(v.history) - 1 }

// Cycle returns the virtual platform cycle count.
func (v *VPCM) Cycle() uint64 { return v.cycle }

// TimePs returns the elapsed virtual time in picoseconds.
func (v *VPCM) TimePs() uint64 { return v.timePs }

// Time returns the elapsed virtual time in seconds.
func (v *VPCM) Time() float64 { return float64(v.timePs) * 1e-12 }

// WallPs returns the estimated physical execution time in picoseconds: the
// virtual cycles clocked at the physical frequency plus every suppression
// and freeze period. This models what a wall clock next to the FPGA would
// measure.
func (v *VPCM) WallPs() uint64 {
	v.freezeMu.Lock()
	defer v.freezeMu.Unlock()
	return v.wallPs + v.frozenPs
}

// EmulationWallPs returns the physical picoseconds attributable to the
// emulation itself: virtual cycles clocked at the physical frequency plus
// memory-suppression periods, excluding frozen time. Freeze durations are
// measured from the host wall clock (link congestion, solver lag), so they
// vary run to run; everything in EmulationWallPs is a pure function of the
// emulated execution and is therefore bit-reproducible. Golden digests pin
// this value, never WallPs.
func (v *VPCM) EmulationWallPs() uint64 {
	v.suppMu.Lock()
	defer v.suppMu.Unlock()
	return v.wallPs
}

// Advance clocks the virtual platform by n cycles at the current virtual
// frequency. The caller must not advance while frozen.
func (v *VPCM) Advance(n uint64) {
	if v.FrozenBy() != "" {
		panic("vpcm: advance while virtual clock is frozen by " + v.FrozenBy())
	}
	v.cycle += n
	v.timePs += n * (picosPerSec / v.virtHz)
	v.wallPs += n * (picosPerSec / v.physHz)
}

// AddSuppression implements mem.SuppressionSink: a memory controller
// requests a virtual-clock inhibition of the given physical cycles because
// its backing device is slower than the modelled latency.
func (v *VPCM) AddSuppression(source string, cycles uint64) {
	v.suppMu.Lock()
	defer v.suppMu.Unlock()
	v.suppress[source] += cycles
	v.suppTotal += cycles
	v.wallPs += cycles * (picosPerSec / v.physHz)
}

// SuppressionCycles returns the total physical cycles of virtual-clock
// suppression requested so far.
func (v *VPCM) SuppressionCycles() uint64 {
	v.suppMu.Lock()
	defer v.suppMu.Unlock()
	return v.suppTotal
}

// SuppressionBySource returns per-source suppression cycles, sorted by
// source name.
func (v *VPCM) SuppressionBySource() []struct {
	Source string
	Cycles uint64
} {
	v.suppMu.Lock()
	defer v.suppMu.Unlock()
	out := make([]struct {
		Source string
		Cycles uint64
	}, 0, len(v.suppress))
	for s, c := range v.suppress {
		out = append(out, struct {
			Source string
			Cycles uint64
		}{s, c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Source < out[j].Source })
	return out
}

// RequestFreeze stops the virtual clock on behalf of a source (e.g. the
// Ethernet dispatcher on congestion). Freezes nest per source.
func (v *VPCM) RequestFreeze(source string) { v.frozen[source] = true }

// ReleaseFreeze resumes the virtual clock for a source.
func (v *VPCM) ReleaseFreeze(source string) { delete(v.frozen, source) }

// FrozenBy returns the name of one freezing source, or "" when running.
func (v *VPCM) FrozenBy() string {
	for s := range v.frozen {
		return s
	}
	return ""
}

// AddFrozenTime accounts physical time spent with the virtual clock frozen
// (reported by whoever held the freeze, in physical cycles).
func (v *VPCM) AddFrozenTime(physCycles uint64) {
	v.AddFrozenTimeSource("", physCycles)
}

// AddFrozenTimeSource is AddFrozenTime with the frozen period attributed to
// a named source (e.g. "ethernet" for congestion, "ethernet-resend" for
// link-loss recovery), so observability can split the stall budget.
func (v *VPCM) AddFrozenTimeSource(source string, physCycles uint64) {
	ps := physCycles * (picosPerSec / v.physHz)
	v.freezeMu.Lock()
	v.frozenPs += ps
	if source != "" {
		if v.frozenBySrc == nil {
			v.frozenBySrc = make(map[string]uint64)
		}
		v.frozenBySrc[source] += ps
	}
	v.freezeMu.Unlock()
}

// FrozenPs returns the total physical picoseconds spent frozen.
func (v *VPCM) FrozenPs() uint64 {
	v.freezeMu.Lock()
	defer v.freezeMu.Unlock()
	return v.frozenPs
}

// FrozenPsBySource returns per-source frozen physical picoseconds, sorted
// by source name.
func (v *VPCM) FrozenPsBySource() []struct {
	Source string
	Ps     uint64
} {
	v.freezeMu.Lock()
	defer v.freezeMu.Unlock()
	out := make([]struct {
		Source string
		Ps     uint64
	}, 0, len(v.frozenBySrc))
	for s, ps := range v.frozenBySrc {
		out = append(out, struct {
			Source string
			Ps     uint64
		}{s, ps})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Source < out[j].Source })
	return out
}

// SpeedRatio returns virtual frequency over physical frequency: how much
// faster the emulated platform is clocked than the FPGA fabric.
func (v *VPCM) SpeedRatio() float64 { return float64(v.virtHz) / float64(v.physHz) }

// String summarises the clock state.
func (v *VPCM) String() string {
	return fmt.Sprintf("vpcm{virt=%d Hz phys=%d Hz cycle=%d t=%.6fs suppressed=%d}",
		v.virtHz, v.physHz, v.cycle, v.Time(), v.suppTotal)
}
