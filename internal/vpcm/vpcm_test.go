package vpcm

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAdvanceTimeAccounting(t *testing.T) {
	v := New(100e6, 500e6)
	v.Advance(500) // 500 cycles at 500 MHz = 1 µs virtual
	if got := v.TimePs(); got != 1_000_000 {
		t.Errorf("virtual time = %d ps, want 1e6", got)
	}
	// Physically those cycles run at 100 MHz = 5 µs wall.
	if got := v.WallPs(); got != 5_000_000 {
		t.Errorf("wall time = %d ps, want 5e6", got)
	}
	if v.Cycle() != 500 {
		t.Errorf("cycle = %d", v.Cycle())
	}
	if v.SpeedRatio() != 5 {
		t.Errorf("ratio = %v", v.SpeedRatio())
	}
}

func TestDFSHistory(t *testing.T) {
	v := New(100e6, 500e6)
	v.Advance(100)
	v.SetFrequency(100e6)
	v.Advance(100)
	v.SetFrequency(100e6) // no-op
	v.SetFrequency(500e6)
	h := v.History()
	if len(h) != 3 {
		t.Fatalf("history length = %d, want 3", len(h))
	}
	if h[0].Hz != 500e6 || h[1].Hz != 100e6 || h[2].Hz != 500e6 {
		t.Errorf("history = %+v", h)
	}
	if h[1].Cycle != 100 {
		t.Errorf("change cycle = %d", h[1].Cycle)
	}
	if v.DFSEvents() != 2 {
		t.Errorf("DFS events = %d", v.DFSEvents())
	}
	// Time advances slower at the lower frequency.
	if h[2].TimePs-h[1].TimePs != 100*10_000 {
		t.Errorf("low-frequency period wrong: %d", h[2].TimePs-h[1].TimePs)
	}
}

func TestSuppression(t *testing.T) {
	v := New(100e6, 100e6)
	v.AddSuppression("ddr", 15)
	v.AddSuppression("ddr", 5)
	v.AddSuppression("shared", 10)
	if v.SuppressionCycles() != 30 {
		t.Errorf("total = %d", v.SuppressionCycles())
	}
	by := v.SuppressionBySource()
	if len(by) != 2 || by[0].Source != "ddr" || by[0].Cycles != 20 {
		t.Errorf("by source = %+v", by)
	}
	// Suppression adds wall time but no virtual time.
	if v.TimePs() != 0 {
		t.Error("suppression advanced virtual time")
	}
	if v.WallPs() != 30*10_000 {
		t.Errorf("wall = %d", v.WallPs())
	}
}

func TestFreezeSemantics(t *testing.T) {
	v := New(100e6, 100e6)
	v.RequestFreeze("ethernet")
	if v.FrozenBy() != "ethernet" {
		t.Errorf("frozen by %q", v.FrozenBy())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("advance while frozen did not panic")
			}
		}()
		v.Advance(1)
	}()
	v.AddFrozenTime(1000)
	v.ReleaseFreeze("ethernet")
	if v.FrozenBy() != "" {
		t.Error("still frozen after release")
	}
	v.Advance(1)
	if v.WallPs() != 1000*10_000+10_000 {
		t.Errorf("wall = %d", v.WallPs())
	}
}

func TestMultipleFreezeSources(t *testing.T) {
	v := New(100e6, 100e6)
	v.RequestFreeze("a")
	v.RequestFreeze("b")
	v.ReleaseFreeze("a")
	if v.FrozenBy() != "b" {
		t.Errorf("frozen by %q, want b", v.FrozenBy())
	}
	v.ReleaseFreeze("b")
	if v.FrozenBy() != "" {
		t.Error("should be running")
	}
}

func TestNewRejectsZeroFrequencies(t *testing.T) {
	for _, pair := range [][2]uint64{{0, 1}, {1, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d, %d) did not panic", pair[0], pair[1])
				}
			}()
			New(pair[0], pair[1])
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("SetFrequency(0) did not panic")
			}
		}()
		New(1e6, 1e6).SetFrequency(0)
	}()
}

// Property: virtual time is monotone and equals the sum of cycles times the
// period in force when each batch was issued.
func TestTimeMonotoneQuick(t *testing.T) {
	freqs := []uint64{100e6, 200e6, 250e6, 500e6}
	f := func(steps []uint8) bool {
		v := New(100e6, 100e6)
		var want uint64
		cur := uint64(100e6)
		for i, s := range steps {
			n := uint64(s)
			if i%3 == 2 {
				cur = freqs[int(s)%len(freqs)]
				v.SetFrequency(cur)
			}
			prev := v.TimePs()
			v.Advance(n)
			want += n * (1_000_000_000_000 / cur)
			if v.TimePs() < prev {
				return false
			}
		}
		return v.TimePs() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrozenTimeBySource(t *testing.T) {
	v := New(100e6, 100e6)
	v.AddFrozenTimeSource("ethernet", 100)
	v.AddFrozenTimeSource("ethernet-resend", 50)
	v.AddFrozenTimeSource("ethernet", 25)
	v.AddFrozenTime(10) // unattributed: total only
	if got := v.FrozenPs(); got != 185*10_000 {
		t.Errorf("frozen total = %d ps, want %d", got, 185*10_000)
	}
	by := v.FrozenPsBySource()
	if len(by) != 2 {
		t.Fatalf("frozen by source = %+v", by)
	}
	if by[0].Source != "ethernet" || by[0].Ps != 125*10_000 {
		t.Errorf("ethernet = %+v", by[0])
	}
	if by[1].Source != "ethernet-resend" || by[1].Ps != 50*10_000 {
		t.Errorf("ethernet-resend = %+v", by[1])
	}
	// Frozen time counts as wall time, not virtual time.
	if v.TimePs() != 0 {
		t.Error("frozen time advanced virtual time")
	}
	if v.WallPs() != 185*10_000 {
		t.Errorf("wall = %d", v.WallPs())
	}
}

func TestStringSummary(t *testing.T) {
	v := New(100e6, 500e6)
	if s := v.String(); !strings.Contains(s, "500000000") {
		t.Errorf("String() = %q", s)
	}
}
