package workloads

import (
	"strings"
	"testing"

	"thermemu/internal/emu"
)

// --- registry ---

func TestRegistryNamesSortedAndComplete(t *testing.T) {
	names := Names()
	for _, want := range []string{"dithering", "fir", "histogram", "locks", "matrix", "matrix-tm", "membound", "pipeline"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry is missing %q (have %v)", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %q before %q", names[i-1], names[i])
		}
	}
	if help := NamesHelp(); !strings.Contains(help, " | ") || !strings.Contains(help, "fir") {
		t.Errorf("NamesHelp() = %q", help)
	}
}

func TestRegistryBuildUnknownListsCorpus(t *testing.T) {
	_, err := Build("fibonacci", Params{Cores: 4})
	if err == nil {
		t.Fatal("Build accepted an unknown workload")
	}
	if !strings.Contains(err.Error(), "fibonacci") || !strings.Contains(err.Error(), NamesHelp()) {
		t.Errorf("error %q should name the workload and list the corpus", err)
	}
}

func TestRegistryMinCores(t *testing.T) {
	if _, err := Build("pipeline", Params{Cores: 1}); err == nil ||
		!strings.Contains(err.Error(), "at least 2") {
		t.Errorf("pipeline at 1 core: %v", err)
	}
	if _, err := Build("pipeline", Params{Cores: 2}); err != nil {
		t.Errorf("pipeline at 2 cores: %v", err)
	}
}

func TestRegistryDefaults(t *testing.T) {
	// A caller that knows only the core count can build everything the
	// registry offers (pipeline aside, which needs 2).
	for _, name := range Names() {
		cores := 2
		s, err := Build(name, Params{Cores: cores})
		if err != nil {
			t.Errorf("Build(%q) with bare params: %v", name, err)
			continue
		}
		if len(s.Programs) != cores {
			t.Errorf("Build(%q) gave %d programs for %d cores", name, len(s.Programs), cores)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(Builder{Name: "matrix", Build: func(Params) (*Spec, error) { return nil, nil }})
}

// --- fir ---

func TestFIRFourCoresBus(t *testing.T) {
	s, err := FIR(4, 4, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, emu.DefaultConfig(4), s, 5_000_000)
}

func TestFIRSingleCoreNoC(t *testing.T) {
	s, err := FIR(1, 4, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := emu.DefaultConfig(1)
	cfg.IC = emu.ICNoC
	cfg.NoC = emu.Table3NoC(1)
	runToCompletion(t, cfg, s, 5_000_000)
}

func TestFIRRejectsBadParams(t *testing.T) {
	for name, build := range map[string]func() (*Spec, error){
		"zero words":     func() (*Spec, error) { return FIR(4, 4, 0, 1) },
		"uneven split":   func() (*Spec, error) { return FIR(4, 4, 30, 1) },
		"taps overrun":   func() (*Spec, error) { return FIR(1, 4096, 4096, 1) },
		"stream overrun": func() (*Spec, error) { return FIR(4, 4, 16384, 1) },
		"negative iters": func() (*Spec, error) { return FIR(4, 4, 16, -1) },
	} {
		if _, err := build(); err == nil {
			t.Errorf("FIR accepted %s", name)
		}
	}
}

func TestFIRVerifierMessages(t *testing.T) {
	s, err := FIR(2, 4, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	y, sums := FIRRef(2, 4, 8)
	good := func(off uint32) uint32 {
		switch {
		case off >= FIROutBase:
			return y[(off-FIROutBase)/4]
		case off < uint32(4*len(sums)):
			return sums[off/4]
		}
		return 0
	}
	if err := s.Verify(good); err != nil {
		t.Fatalf("verifier rejected the reference memory: %v", err)
	}
	badOut := func(off uint32) uint32 {
		if off == FIROutBase+4*3 {
			return good(off) + 1
		}
		return good(off)
	}
	if err := s.Verify(badOut); err == nil || !strings.Contains(err.Error(), "output sample 3") {
		t.Errorf("corrupt output sample: %v", err)
	}
	badSum := func(off uint32) uint32 {
		if off == ChecksumBase+4 {
			return good(off) ^ 0xFF
		}
		return good(off)
	}
	if err := s.Verify(badSum); err == nil || !strings.Contains(err.Error(), "core 1 segment checksum") {
		t.Errorf("corrupt segment checksum: %v", err)
	}
}

// --- histogram ---

func TestHistogramFourCoresBus(t *testing.T) {
	s, err := Histogram(4, 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, emu.DefaultConfig(4), s, 5_000_000)
}

func TestHistogramParallelMode(t *testing.T) {
	// The contended global lock is exactly what the deterministic parallel
	// arbiter must serialise correctly.
	s, err := Histogram(4, 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	cfg := emu.DefaultConfig(4)
	cfg.Parallel = true
	p := emu.MustNew(cfg)
	load(t, p, s)
	if _, done := p.RunParallel(64, 5_000_000); !done {
		t.Fatal("histogram did not finish under the parallel kernel")
	}
	if err := s.Verify(p.ReadSharedWord); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramRejectsBadParams(t *testing.T) {
	for name, build := range map[string]func() (*Spec, error){
		"zero bins":    func() (*Spec, error) { return Histogram(4, 0, 32) },
		"bins overrun": func() (*Spec, error) { return Histogram(4, 4096, 4096) },
		"uneven split": func() (*Spec, error) { return Histogram(4, 8, 30) },
	} {
		if _, err := build(); err == nil {
			t.Errorf("Histogram accepted %s", name)
		}
	}
}

func TestHistogramVerifierMessages(t *testing.T) {
	s, err := Histogram(2, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	want := HistogramRef(4, 16)
	good := func(off uint32) uint32 {
		if off >= HistBase && off < HistBase+uint32(4*len(want)) {
			return want[(off-HistBase)/4]
		}
		return 0
	}
	if err := s.Verify(good); err != nil {
		t.Fatalf("verifier rejected the reference memory: %v", err)
	}
	lost := func(off uint32) uint32 {
		if off == HistBase+4*2 && good(off) > 0 {
			return good(off) - 1
		}
		return good(off)
	}
	if err := s.Verify(lost); err == nil || !strings.Contains(err.Error(), "lost updates") {
		t.Errorf("lost update: %v", err)
	}
	held := func(off uint32) uint32 {
		if off == HistLockAddr {
			return 1
		}
		return good(off)
	}
	if err := s.Verify(held); err == nil || !strings.Contains(err.Error(), "lock left held") {
		t.Errorf("held lock: %v", err)
	}
}

// --- pipeline ---

func TestPipelineTwoCoresBus(t *testing.T) {
	s, err := Pipeline(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, emu.DefaultConfig(2), s, 5_000_000)
}

func TestPipelineFourCoresNoC(t *testing.T) {
	s, err := Pipeline(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := emu.DefaultConfig(4)
	cfg.IC = emu.ICNoC
	cfg.NoC = emu.Table3NoC(4)
	runToCompletion(t, cfg, s, 5_000_000)
}

func TestPipelineRejectsBadParams(t *testing.T) {
	if _, err := Pipeline(1, 16); err == nil || !strings.Contains(err.Error(), "at least 2") {
		t.Errorf("single-core pipeline: %v", err)
	}
	if _, err := Pipeline(4, 0); err == nil {
		t.Error("Pipeline accepted zero items")
	}
}

func TestPipelineVerifierMessages(t *testing.T) {
	const cores, items = 3, 8
	s, err := Pipeline(cores, items)
	if err != nil {
		t.Fatal(err)
	}
	good := func(off uint32) uint32 {
		switch {
		case off == PipeOutAddr:
			return PipelineRef(cores, items)
		case off < uint32(4*cores):
			return items
		}
		return 0
	}
	if err := s.Verify(good); err != nil {
		t.Fatalf("verifier rejected the reference memory: %v", err)
	}
	wrongSum := func(off uint32) uint32 {
		if off == PipeOutAddr {
			return good(off) + 1
		}
		return good(off)
	}
	if err := s.Verify(wrongSum); err == nil || !strings.Contains(err.Error(), "final accumulator") {
		t.Errorf("wrong accumulator: %v", err)
	}
	shortStage := func(off uint32) uint32 {
		if off == ChecksumBase+4 {
			return items - 1
		}
		return good(off)
	}
	if err := s.Verify(shortStage); err == nil || !strings.Contains(err.Error(), "stage 1 processed") {
		t.Errorf("short stage: %v", err)
	}
	stranded := func(off uint32) uint32 {
		if off == PipeBase+8 {
			return 1
		}
		return good(off)
	}
	if err := s.Verify(stranded); err == nil || !strings.Contains(err.Error(), "mailbox 1 flag left raised") {
		t.Errorf("stranded item: %v", err)
	}
}

// --- shared-block geometry ---

func TestSpecSharedBlocksStayDisjoint(t *testing.T) {
	// Every corpus workload's preloaded shared blocks must be disjoint —
	// the scenario linter's overlap check relies on it.
	for _, name := range Names() {
		s, err := Build(name, Params{Cores: 4, N: 8, Iters: 2, Size: 16, Words: 32})
		if err != nil {
			t.Errorf("Build(%q): %v", name, err)
			continue
		}
		type span struct{ lo, hi uint32 }
		var spans []span
		for _, b := range s.Shared {
			spans = append(spans, span{b.Addr, b.Addr + uint32(len(b.Data))})
		}
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
					t.Errorf("%s: shared blocks [%#x,%#x) and [%#x,%#x) overlap",
						name, spans[i].lo, spans[i].hi, spans[j].lo, spans[j].hi)
				}
			}
		}
	}
}
