package workloads

import (
	"fmt"

	"thermemu/internal/asm"
)

// Shared-memory offsets of the FIR workload. The layouts stay below 32 KB
// so the workload also fits the Figure 6 platform's small shared memory.
const (
	FIRTapBase = 0x0200 // filter coefficients, one word each
	FIRInBase  = 0x2000 // input sample stream
	FIROutBase = 0x5000 // filtered output stream
)

// firSample is the deterministic initial value of input sample i.
func firSample(i uint32) uint32 { return (i*37 + 11) & 0x3FF }

// firTap is the deterministic coefficient of tap k.
func firTap(k uint32) uint32 { return (k*5 + 1) & 0xF }

// FIRRef computes the reference output stream y and the per-core segment
// checksums for a `taps`-tap filter over `words` samples split into one
// contiguous output segment per core: y[i] = sum_k h[k]*x[i-k] with x[j<0]
// treated as zero, in 32-bit wraparound arithmetic — exactly the R32
// program's computation.
func FIRRef(cores, taps, words int) (y []uint32, sums []uint32) {
	y = make([]uint32, words)
	for i := 0; i < words; i++ {
		var acc uint32
		for k := 0; k < taps; k++ {
			if j := i - k; j >= 0 {
				acc += firTap(uint32(k)) * firSample(uint32(j))
			}
		}
		y[i] = acc
	}
	seg := words / cores
	sums = make([]uint32, cores)
	for c := 0; c < cores; c++ {
		for i := c * seg; i < (c+1)*seg; i++ {
			sums[c] += y[i]
		}
	}
	return y, sums
}

// firProgram generates the per-core FIR assembly: `iters` passes of the
// filter over the core's output segment (every pass produces the same
// values; the repetitions model sustained streaming load).
func firProgram(taps, words, iters, seg int) string {
	return fmt.Sprintf(`
	.equ TAPS,  %d
	.equ SEG,   %d            ; output words per core
	.equ ITERS, %d
	.equ TAPB,  0x%x          ; SharedBase + FIRTapBase
	.equ INB,   0x%x          ; SharedBase + FIRInBase
	.equ OUTB,  0x%x          ; SharedBase + FIROutBase
	.equ SHARED, 0x10000000
	.equ INFO,   0x22000000

start:
	li   r20, INFO
	lw   r21, 0(r20)          ; coreID
	li   r2, SEG
	mul  r3, r21, r2          ; i0 = coreID*SEG
	add  r4, r3, r2           ; iEnd
	li   r13, TAPS
	li   r17, ITERS
iter:
	add  r14, r0, r0          ; segment checksum
	mv   r5, r3               ; i
iloop:
	add  r10, r0, r0          ; acc
	add  r6, r0, r0           ; k
kloop:
	sub  r7, r5, r6           ; j = i-k
	blt  r7, r0, knext        ; x[j<0] = 0
	slli r8, r6, 2
	li   r9, TAPB
	add  r8, r8, r9
	lw   r8, 0(r8)            ; h[k]
	slli r9, r7, 2
	li   r12, INB
	add  r9, r9, r12
	lw   r9, 0(r9)            ; x[j]
	mul  r8, r8, r9
	add  r10, r10, r8
knext:
	inc  r6
	bne  r6, r13, kloop
	slli r8, r5, 2
	li   r9, OUTB
	add  r8, r8, r9
	sw   r10, 0(r8)           ; y[i]
	add  r14, r14, r10
	inc  r5
	bne  r5, r4, iloop
	dec  r17
	bne  r17, r0, iter

	; publish the segment checksum at SHARED + 4*coreID
	li   r22, SHARED
	slli r23, r21, 2
	add  r22, r22, r23
	sw   r14, 0(r22)
	halt
`, taps, seg, iters,
		SharedBase+FIRTapBase, SharedBase+FIRInBase, SharedBase+FIROutBase)
}

// FIR builds the streaming FIR workload: every core convolves its segment
// of a shared `words`-sample stream with a shared `taps`-coefficient filter
// `iters` times, writes the output stream and publishes its segment
// checksum. words must divide evenly across the cores, and the in/out
// streams must fit between their shared-memory bases.
func FIR(cores, taps, words, iters int) (*Spec, error) {
	if cores <= 0 || taps <= 0 || words <= 0 || iters <= 0 {
		return nil, fmt.Errorf("workloads: cores, taps, words and iters must be positive")
	}
	if words%cores != 0 {
		return nil, fmt.Errorf("workloads: fir stream of %d words must divide evenly across %d cores", words, cores)
	}
	if 4*taps > FIRInBase-FIRTapBase {
		return nil, fmt.Errorf("workloads: fir tap table of %d words overruns the input stream base", taps)
	}
	if 4*words > FIROutBase-FIRInBase {
		return nil, fmt.Errorf("workloads: fir stream of %d words overruns the output base (max %d)",
			words, (FIROutBase-FIRInBase)/4)
	}
	im, err := asm.Assemble(firProgram(taps, words, iters, words/cores))
	if err != nil {
		return nil, fmt.Errorf("workloads: fir program: %w", err)
	}
	progs := replicate(im, cores)
	in := make([]uint32, words)
	for i := range in {
		in[i] = firSample(uint32(i))
	}
	h := make([]uint32, taps)
	for k := range h {
		h[k] = firTap(uint32(k))
	}
	spec := &Spec{
		Name:     fmt.Sprintf("fir-%dc-%dt-%dw-%dit", cores, taps, words, iters),
		Programs: progs,
		Shared: []SharedBlock{
			{Addr: FIRTapBase, Data: packWords(h)},
			{Addr: FIRInBase, Data: packWords(in)},
		},
	}
	spec.Verify = func(read func(uint32) uint32) error {
		y, sums := FIRRef(cores, taps, words)
		for i, w := range y {
			if got := read(FIROutBase + uint32(4*i)); got != w {
				return fmt.Errorf("fir: output sample %d = %#x, want %#x", i, got, w)
			}
		}
		for c, w := range sums {
			if got := read(ChecksumBase + uint32(4*c)); got != w {
				return fmt.Errorf("fir: core %d segment checksum %#x, want %#x", c, got, w)
			}
		}
		return nil
	}
	return spec, nil
}

// replicate returns the same assembled image for every core; all corpus
// programs read their core id from the platform info device.
func replicate(im *asm.Image, cores int) []*asm.Image {
	progs := make([]*asm.Image, cores)
	for i := range progs {
		progs[i] = im
	}
	return progs
}
