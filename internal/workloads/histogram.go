package workloads

import (
	"fmt"

	"thermemu/internal/asm"
)

// Shared-memory offsets of the HISTOGRAM workload.
const (
	HistLockAddr = 0x0900 // global spinlock protecting the bin array
	HistBase     = 0x0A00 // bin counters, one word per bin (<= 256 bins)
	HistDataBase = 0x2000 // input element stream (bin indices)
)

// histElement is the deterministic bin index of input element i: a
// multiplicative hash folded into [0, bins).
func histElement(i uint32, bins int) uint32 {
	return (i * 2654435761 >> 7) % uint32(bins)
}

// HistogramRef computes the reference bin counts for `words` elements.
func HistogramRef(bins, words int) []uint32 {
	counts := make([]uint32, bins)
	for i := 0; i < words; i++ {
		counts[histElement(uint32(i), bins)]++
	}
	return counts
}

// histProgram generates the per-core HISTOGRAM assembly: each core walks
// its disjoint segment of the element stream and increments the shared bin
// counters under one global swap-based spinlock — every increment fights
// every other core for the same lock word, which is the point: the
// workload saturates the interconnect with contended atomic traffic in a
// way the segment-parallel drivers never do.
func histProgram(seg int) string {
	return fmt.Sprintf(`
	.equ SEG,   %d            ; elements per core
	.equ SEGB,  %d            ; bytes per segment
	.equ LOCK,  0x%x
	.equ HIST,  0x%x
	.equ DATA,  0x%x
	.equ INFO,  0x22000000

start:
	li   r20, INFO
	lw   r21, 0(r20)          ; coreID
	li   r2, SEGB
	mul  r3, r21, r2
	li   r4, DATA
	add  r4, r4, r3           ; element cursor
	li   r5, SEG              ; remaining
	li   r11, LOCK
	li   r9, HIST
loop:
	lw   r6, 0(r4)            ; bin index
	; acquire the global lock
acquire:
	addi r7, r0, 1
	swap r7, 0(r11)
	bne  r7, r0, acquire
	; hist[bin]++
	slli r8, r6, 2
	add  r8, r8, r9
	lw   r10, 0(r8)
	inc  r10
	sw   r10, 0(r8)
	; release
	sw   r0, 0(r11)
	addi r4, r4, 4
	dec  r5
	bne  r5, r0, loop
	halt
`, seg, seg*4,
		SharedBase+HistLockAddr, SharedBase+HistBase, SharedBase+HistDataBase)
}

// Histogram builds the HISTOGRAM workload: `words` elements pre-binned into
// [0, bins) are split into one segment per core, and every core counts its
// elements into the shared bin array under a single global spinlock. The
// final counts are interleaving-independent (increments commute), so the
// verifier can check them bit-exactly on any kernel.
func Histogram(cores, bins, words int) (*Spec, error) {
	if cores <= 0 || bins <= 0 || words <= 0 {
		return nil, fmt.Errorf("workloads: cores, bins and words must be positive")
	}
	if bins > (HistDataBase-HistBase)/4 {
		return nil, fmt.Errorf("workloads: histogram with %d bins overruns the data base (max %d)",
			bins, (HistDataBase-HistBase)/4)
	}
	if words%cores != 0 {
		return nil, fmt.Errorf("workloads: %d elements must divide evenly across %d cores", words, cores)
	}
	im, err := asm.Assemble(histProgram(words / cores))
	if err != nil {
		return nil, fmt.Errorf("workloads: histogram program: %w", err)
	}
	data := make([]uint32, words)
	for i := range data {
		data[i] = histElement(uint32(i), bins)
	}
	spec := &Spec{
		Name:     fmt.Sprintf("histogram-%dc-%db-%dw", cores, bins, words),
		Programs: replicate(im, cores),
		Shared:   []SharedBlock{{Addr: HistDataBase, Data: packWords(data)}},
	}
	spec.Verify = func(read func(uint32) uint32) error {
		want := HistogramRef(bins, words)
		var total uint32
		for b, w := range want {
			got := read(HistBase + uint32(4*b))
			if got != w {
				return fmt.Errorf("histogram: bin %d count %d, want %d (lost updates)", b, got, w)
			}
			total += got
		}
		if total != uint32(words) {
			return fmt.Errorf("histogram: %d elements counted, want %d", total, words)
		}
		if lock := read(HistLockAddr); lock != 0 {
			return fmt.Errorf("histogram: lock left held (%d)", lock)
		}
		return nil
	}
	return spec, nil
}
