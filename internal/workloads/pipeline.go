package workloads

import (
	"fmt"

	"thermemu/internal/asm"
)

// Shared-memory offsets of the PIPELINE workload.
const (
	PipeOutAddr = 0x0B00 // final accumulator published by the last stage
	PipeBase    = 0x0C00 // single-slot mailboxes, 8 bytes per stage boundary
)

// pipeSource is the deterministic value item i enters the pipeline with.
func pipeSource(i uint32) uint32 { return (i*31 + 7) & 0xFFFF }

// pipeStage is the transformation stage c applies to an item (stages are
// cores 1..cores-1; core 0 only produces).
func pipeStage(v uint32, c int) uint32 { return v*3 + uint32(c) }

// PipelineRef computes the reference final accumulator: every item flows
// through stages 1..cores-1 in FIFO order and the last stage sums the
// results in 32-bit wraparound arithmetic.
func PipelineRef(cores, items int) uint32 {
	var sum uint32
	for i := 0; i < items; i++ {
		v := pipeSource(uint32(i))
		for c := 1; c < cores; c++ {
			v = pipeStage(v, c)
		}
		sum += v
	}
	return sum
}

// pipeProgram generates the per-core PIPELINE assembly. Core 0 produces
// `items` values; cores 1..n-2 relay (pop, transform, push); core n-1
// consumes and accumulates. Adjacent stages hand items through a
// single-slot mailbox (flag word + data word) in shared memory: the
// producer spins until the flag clears, writes the item, raises the flag;
// the consumer spins until the flag rises, takes the item, clears the
// flag. Every transfer crosses the interconnect, so on a NoC the traffic
// pattern is the neighbour-to-neighbour stream the paper's Xpipes fabric
// is built for.
func pipeProgram(items int) string {
	return fmt.Sprintf(`
	.equ ITEMS, %d
	.equ PIPE,  0x%x          ; SharedBase + PipeBase
	.equ OUT,   0x%x          ; SharedBase + PipeOutAddr
	.equ SHARED, 0x10000000
	.equ INFO,   0x22000000

start:
	li   r20, INFO
	lw   r21, 0(r20)          ; coreID
	lw   r24, 4(r20)          ; ncores
	subi r25, r24, 1          ; last stage id
	li   r17, ITEMS           ; remaining items
	add  r10, r0, r0          ; accumulator (last stage only)
	add  r6, r0, r0           ; item index (producer only)
	li   r2, PIPE
	slli r3, r21, 3
	add  r4, r2, r3           ; outgoing mailbox (valid unless last)
	subi r5, r4, 8            ; incoming mailbox (valid unless first)

loop:
	bne  r21, r0, consume
	; producer: v = (i*31 + 7) & 0xFFFF
	slli r8, r6, 5
	sub  r8, r8, r6           ; i*31
	addi r8, r8, 7
	andi r7, r8, 0xFFFF
	inc  r6
	b    produce
consume:
	; pop: spin until the incoming flag rises
cwait:
	lw   r8, 0(r5)
	beq  r8, r0, cwait
	lw   r7, 4(r5)            ; take the item
	sw   r0, 0(r5)            ; free the slot
	; transform: v = v*3 + coreID
	slli r8, r7, 1
	add  r7, r8, r7
	add  r7, r7, r21
produce:
	beq  r21, r25, sink       ; the last stage keeps the item
	; push: spin until the outgoing slot frees
pwait:
	lw   r8, 0(r4)
	bne  r8, r0, pwait
	sw   r7, 4(r4)            ; place the item
	addi r8, r0, 1
	sw   r8, 0(r4)            ; raise the flag
	b    next
sink:
	add  r10, r10, r7
next:
	dec  r17
	bne  r17, r0, loop

	; every core publishes its processed-item count; the last stage also
	; publishes the accumulator.
	li   r22, SHARED
	slli r23, r21, 2
	add  r22, r22, r23
	li   r9, ITEMS
	sw   r9, 0(r22)
	bne  r21, r25, done
	li   r4, OUT
	sw   r10, 0(r4)
done:
	halt
`, items, SharedBase+PipeBase, SharedBase+PipeOutAddr)
}

// Pipeline builds the producer-consumer PIPELINE workload: core 0 streams
// `items` values through the chain of remaining cores over single-slot
// shared mailboxes, each stage applying its transformation, and the last
// core publishes the accumulated result. Needs at least two cores (one
// producer, one consumer).
func Pipeline(cores, items int) (*Spec, error) {
	if cores < 2 {
		return nil, fmt.Errorf("workloads: pipeline needs at least 2 cores (a producer and a consumer), got %d", cores)
	}
	if items <= 0 {
		return nil, fmt.Errorf("workloads: pipeline items must be positive")
	}
	im, err := asm.Assemble(pipeProgram(items))
	if err != nil {
		return nil, fmt.Errorf("workloads: pipeline program: %w", err)
	}
	spec := &Spec{
		Name:     fmt.Sprintf("pipeline-%dc-%di", cores, items),
		Programs: replicate(im, cores),
	}
	spec.Verify = func(read func(uint32) uint32) error {
		want := PipelineRef(cores, items)
		if got := read(PipeOutAddr); got != want {
			return fmt.Errorf("pipeline: final accumulator %#x, want %#x", got, want)
		}
		for c := 0; c < cores; c++ {
			if got := read(ChecksumBase + uint32(4*c)); got != uint32(items) {
				return fmt.Errorf("pipeline: stage %d processed %d items, want %d", c, got, items)
			}
		}
		for b := 0; b < cores-1; b++ {
			if flag := read(PipeBase + uint32(8*b)); flag != 0 {
				return fmt.Errorf("pipeline: mailbox %d flag left raised (%d items stranded)", b, flag)
			}
		}
		return nil
	}
	return spec, nil
}
