package workloads

import (
	"fmt"
	"sort"
	"strings"
)

// Params carries the numeric knobs a registered workload builder may
// consult. Builders apply their own defaults for zero-valued fields, so a
// caller that only knows the core count can build any corpus workload.
type Params struct {
	Cores  int
	PrivKB int // private memory per core in KB, for program-fit checks
	N      int // matrix dimension / FIR taps / histogram bins
	Iters  int // repetition count (sustained-load iterations)
	Size   int // dithering image edge
	Words  int // stream length (membound, fir, histogram, pipeline items)
}

// withDefaults returns p with zero fields replaced by the corpus defaults
// (the same values the CLIs use as flag defaults).
func (p Params) withDefaults() Params {
	if p.PrivKB == 0 {
		p.PrivKB = 64
	}
	if p.N == 0 {
		p.N = 16
	}
	if p.Iters == 0 {
		p.Iters = 10
	}
	if p.Size == 0 {
		p.Size = 64
	}
	if p.Words == 0 {
		p.Words = 64
	}
	return p
}

// Builder is one registry entry: a named corpus workload with its
// documentation line and spec constructor.
type Builder struct {
	Name string
	// Doc is the one-line description CLIs print in -workload help.
	Doc string
	// ForceFreqMHz, when non-zero, is the operating point the workload
	// imposes on the platform (matrix-tm runs at the Figure 6 point of
	// 500 MHz regardless of the configured frequency, exactly like the
	// historical -workload matrix-tm flag behaviour).
	ForceFreqMHz int
	// MinCores, when non-zero, is the smallest core count the workload
	// supports (the producer-consumer pipeline needs at least 2).
	MinCores int
	Build    func(Params) (*Spec, error)
}

var registry = map[string]Builder{}

// Register adds a workload builder to the corpus registry. It panics on a
// duplicate name: registration happens in package init, so a duplicate is a
// programming error, not a runtime condition.
func Register(b Builder) {
	if b.Name == "" || b.Build == nil {
		panic("workloads: Register needs a name and a Build func")
	}
	if _, dup := registry[b.Name]; dup {
		panic(fmt.Sprintf("workloads: duplicate registration of %q", b.Name))
	}
	registry[b.Name] = b
}

// Names returns the sorted names of every registered workload.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NamesHelp renders the registry as a "a | b | c" flag-help string, so CLI
// -workload usage lines always reflect the live corpus.
func NamesHelp() string { return strings.Join(Names(), " | ") }

// Lookup returns the builder registered under name.
func Lookup(name string) (Builder, bool) {
	b, ok := registry[name]
	return b, ok
}

// Build constructs the named workload with the given parameters. Unknown
// names report the full registry so CLI users see what exists.
func Build(name string, p Params) (*Spec, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q (have %s)", name, NamesHelp())
	}
	if b.MinCores > 0 && p.Cores < b.MinCores {
		return nil, fmt.Errorf("workloads: %s needs at least %d cores, got %d", name, b.MinCores, p.Cores)
	}
	return b.Build(p)
}

func init() {
	Register(Builder{
		Name: "matrix",
		Doc:  "independent NxN integer matrix products per core, combined in shared memory (Table 3)",
		Build: func(p Params) (*Spec, error) {
			p = p.withDefaults()
			return Matrix(p.Cores, p.N, p.Iters, p.PrivKB)
		},
	})
	Register(Builder{
		Name:         "matrix-tm",
		Doc:          "the sustained-load MATRIX variant of the thermal experiments, pinned to 500 MHz (Table 3, Figure 6)",
		ForceFreqMHz: 500,
		Build: func(p Params) (*Spec, error) {
			p = p.withDefaults()
			return MatrixTM(p.Cores, p.N, p.Iters, p.PrivKB)
		},
	})
	Register(Builder{
		Name: "dithering",
		Doc:  "Floyd-Steinberg dithering of two shared grey images, one horizontal segment per core (Table 3)",
		Build: func(p Params) (*Spec, error) {
			p = p.withDefaults()
			return Dithering(p.Cores, p.Size)
		},
	})
	Register(Builder{
		Name: "membound",
		Doc:  "stall-bound shared-stream reads, the skip-ahead kernel's worst case",
		Build: func(p Params) (*Spec, error) {
			p = p.withDefaults()
			return MemBound(p.Cores, p.Words, p.Iters)
		},
	})
	Register(Builder{
		Name: "locks",
		Doc:  "spinlock-protected shared counter increments, stressing atomic exchange and contention",
		Build: func(p Params) (*Spec, error) {
			p = p.withDefaults()
			return Locks(p.Cores, p.Iters)
		},
	})
	Register(Builder{
		Name: "fir",
		Doc:  "streaming N-tap FIR filter over a shared sample stream, one output segment per core",
		Build: func(p Params) (*Spec, error) {
			p = p.withDefaults()
			return FIR(p.Cores, firDefaultTaps(p.N), p.Words, p.Iters)
		},
	})
	Register(Builder{
		Name: "histogram",
		Doc:  "shared histogram binning under one global spinlock - heavy lock contention on the interconnect",
		Build: func(p Params) (*Spec, error) {
			p = p.withDefaults()
			return Histogram(p.Cores, histDefaultBins(p.N), p.Words)
		},
	})
	Register(Builder{
		Name:     "pipeline",
		Doc:      "producer-consumer chain through single-slot shared mailboxes, core i feeding core i+1 (NoC-friendly)",
		MinCores: 2,
		Build: func(p Params) (*Spec, error) {
			p = p.withDefaults()
			return Pipeline(p.Cores, p.Words)
		},
	})
}

// firDefaultTaps maps the generic N parameter (default 16, sized for matrix
// dimensions) onto a sensible FIR tap count.
func firDefaultTaps(n int) int {
	if n > 64 {
		return 8
	}
	if n > 16 {
		return 16
	}
	return n
}

// histDefaultBins maps the generic N parameter onto a histogram bin count.
func histDefaultBins(n int) int {
	if n < 2 {
		return 2
	}
	if n > 256 {
		return 256
	}
	return n
}
