// Package workloads provides the SW drivers of the paper's evaluation as
// R32 assembly programs plus bit-exact Go reference implementations used to
// verify the emulation:
//
//   - MATRIX: independent matrix multiplications in each processor's
//     private memory, with the per-core results combined in shared memory
//     at the end (Table 3);
//   - MATRIX-TM: the same kernel repeated for a configurable iteration
//     count (the paper uses a workload of 100 K matrices) to stress the
//     MPSoC for the thermal experiments (Table 3 and Figure 6);
//   - DITHERING: Floyd–Steinberg dithering of two grey images stored in
//     shared memory, divided into one horizontal segment per core — a
//     highly parallel driver imposing almost the same workload on each
//     processor (Table 3).
//
// Error diffusion in DITHERING stops at segment boundaries so the segments
// are fully independent, which keeps the parallel run deterministic; the
// Go reference applies the same rule.
package workloads

import (
	"encoding/binary"
	"fmt"

	"thermemu/internal/asm"
)

// Platform address-map constants the generated programs assume (they match
// package emu's map).
const (
	SharedBase  = 0x1000_0000
	BarrierBase = 0x2000_0000
	InfoBase    = 0x2200_0000
)

// Shared-memory layout offsets.
const (
	ChecksumBase = 0x0000 // per-core matrix checksums, one word per core
	TotalAddr    = 0x0100 // combined checksum written by core 0
	ImageBase    = 0x1000 // first dithering image
)

// SharedBlock is initial shared-memory content for a workload.
type SharedBlock struct {
	Addr uint32 // offset within shared memory
	Data []byte
}

// Spec is a ready-to-load workload: one program per core, initial shared
// memory, and a verifier that checks the final shared-memory state against
// the Go reference implementation.
type Spec struct {
	Name     string
	Programs []*asm.Image
	Shared   []SharedBlock
	// Verify reads final shared memory through the supplied accessor
	// (word offsets within shared memory) and returns an error on any
	// mismatch with the reference computation.
	Verify func(readShared func(uint32) uint32) error
}

// packWords serialises uint32s little-endian.
func packWords(vs []uint32) []byte {
	b := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(b[4*i:], v)
	}
	return b
}

// ---------------------------------------------------------------------------
// MATRIX
// ---------------------------------------------------------------------------

// matrixInitA/B are the deterministic initial element patterns; they only
// depend on the linear index and the core id, so the assembly can generate
// them with a single loop.
func matrixInitA(core int, i uint32) uint32 { return (i + uint32(core)) & 0xFF }
func matrixInitB(i uint32) uint32           { return (i*3 + 1) & 0xFF }

// MatrixChecksum computes the reference checksum one core produces: the sum
// of all elements of C = A×B after iters sequential multiplications (the
// result is identical across iterations; the iterations model sustained
// load, exactly as in the emulated program).
func MatrixChecksum(core, n int) uint32 {
	nn := uint32(n)
	a := make([]uint32, nn*nn)
	b := make([]uint32, nn*nn)
	for i := uint32(0); i < nn*nn; i++ {
		a[i] = matrixInitA(core, i)
		b[i] = matrixInitB(i)
	}
	var sum uint32
	for i := uint32(0); i < nn; i++ {
		for j := uint32(0); j < nn; j++ {
			var acc uint32
			for k := uint32(0); k < nn; k++ {
				acc += a[i*nn+k] * b[k*nn+j]
			}
			sum += acc
		}
	}
	return sum
}

// matrixProgram generates the per-core MATRIX assembly. All cores run the
// same binary; each reads its id from the platform info device.
func matrixProgram(cores, n, iters, privKB int) (string, error) {
	matWords := n * n * 4
	codeRoom := 0x1000
	need := codeRoom + 3*matWords
	if need > privKB*1024 {
		return "", fmt.Errorf("workloads: %d x %d matrices need %d bytes, private memory has %d",
			n, n, need, privKB*1024)
	}
	return fmt.Sprintf(`
	.equ N,       %d
	.equ NCORES,  %d
	.equ ITERS,   %d
	.equ MATA,    %d
	.equ MATB,    %d
	.equ MATC,    %d
	.equ NSQ,     %d
	.equ ROWB,    %d          ; N*4
	.equ SHARED,  0x10000000
	.equ BARRIER, 0x20000000
	.equ INFO,    0x22000000
	.equ TOTAL,   0x10000100

start:
	li   r20, INFO
	lw   r21, 0(r20)          ; coreID
	lw   r24, 4(r20)          ; ncores

	; --- initialise A[i] = (i+coreID)&0xFF, B[i] = (3i+1)&0xFF ---
	li   r2, NSQ
	li   r4, MATA
	li   r5, MATB
	add  r3, r0, r0           ; i
init:
	add  r6, r3, r21
	andi r6, r6, 0xFF
	sw   r6, 0(r4)
	slli r6, r3, 1
	add  r6, r6, r3           ; 3i
	addi r6, r6, 1
	andi r6, r6, 0xFF
	sw   r6, 0(r5)
	addi r4, r4, 4
	addi r5, r5, 4
	inc  r3
	bne  r3, r2, init

	; --- ITERS matrix multiplications ---
	li   r17, ITERS
	li   r13, ROWB
iter:
	li   r11, MATA            ; row cursor base
	li   r14, MATC            ; C cursor
	li   r1, N
	add  r7, r0, r0           ; i
iloop:
	add  r8, r0, r0           ; j
jloop:
	add  r10, r0, r0          ; acc
	; r11 holds &A[i*N], r12 walks B column j
	li   r12, MATB
	slli r6, r8, 2
	add  r12, r12, r6
	mv   r9, r1               ; k = N
	mv   r6, r11              ; A cursor
kloop:
	lw   r15, 0(r6)
	lw   r16, 0(r12)
	mul  r15, r15, r16
	add  r10, r10, r15
	addi r6, r6, 4
	add  r12, r12, r13
	dec  r9
	bne  r9, r0, kloop
	sw   r10, 0(r14)
	addi r14, r14, 4
	inc  r8
	bne  r8, r1, jloop
	add  r11, r11, r13        ; next A row
	inc  r7
	bne  r7, r1, iloop
	dec  r17
	bne  r17, r0, iter

	; --- checksum C ---
	li   r2, NSQ
	li   r4, MATC
	add  r10, r0, r0
	add  r3, r0, r0
csum:
	lw   r6, 0(r4)
	add  r10, r10, r6
	addi r4, r4, 4
	inc  r3
	bne  r3, r2, csum

	; --- publish checksum: SHARED + 4*coreID ---
	li   r22, SHARED
	slli r23, r21, 2
	add  r22, r22, r23
	sw   r10, 0(r22)

	; --- barrier ---
	li   r25, BARRIER
	lw   r26, 0(r25)          ; generation
	sw   r0, 0(r25)           ; arrive
bspin:
	lw   r27, 0(r25)
	beq  r27, r26, bspin

	; --- core 0 combines ---
	bne  r21, r0, done
	mv   r3, r24
	li   r4, SHARED
	add  r5, r0, r0
combine:
	lw   r6, 0(r4)
	add  r5, r5, r6
	addi r4, r4, 4
	dec  r3
	bne  r3, r0, combine
	li   r4, TOTAL
	sw   r5, 0(r4)
done:
	halt
`, n, cores, iters, codeRoom, codeRoom+matWords, codeRoom+2*matWords,
		n*n, n*4), nil
}

// Matrix builds the MATRIX workload: cores independent n×n multiplications
// repeated iters times, combined in shared memory at the end.
func Matrix(cores, n, iters, privKB int) (*Spec, error) {
	if cores <= 0 || n <= 0 || iters <= 0 {
		return nil, fmt.Errorf("workloads: cores, n and iters must be positive")
	}
	src, err := matrixProgram(cores, n, iters, privKB)
	if err != nil {
		return nil, err
	}
	im, err := asm.Assemble(src)
	if err != nil {
		return nil, fmt.Errorf("workloads: matrix program: %w", err)
	}
	progs := make([]*asm.Image, cores)
	for i := range progs {
		progs[i] = im
	}
	spec := &Spec{Name: fmt.Sprintf("matrix-%dc-%dx%d-%dit", cores, n, n, iters), Programs: progs}
	spec.Verify = func(read func(uint32) uint32) error {
		var total uint32
		for c := 0; c < cores; c++ {
			want := MatrixChecksum(c, n)
			got := read(ChecksumBase + uint32(4*c))
			if got != want {
				return fmt.Errorf("matrix: core %d checksum %#x, want %#x", c, got, want)
			}
			total += want
		}
		if got := read(TotalAddr); got != total {
			return fmt.Errorf("matrix: combined checksum %#x, want %#x", got, total)
		}
		return nil
	}
	return spec, nil
}

// MatrixTM builds the thermal-stress variant: the paper's "workload of
// 100 K matrices" is Matrix with a large iteration count.
func MatrixTM(cores, n, iters, privKB int) (*Spec, error) {
	s, err := Matrix(cores, n, iters, privKB)
	if err != nil {
		return nil, err
	}
	s.Name = fmt.Sprintf("matrix-tm-%dc-%dx%d-%dit", cores, n, n, iters)
	return s, nil
}

// ---------------------------------------------------------------------------
// DITHERING
// ---------------------------------------------------------------------------

// ditherPixel is the deterministic grey value of pixel (x,y) of image img.
func ditherPixel(img, x, y int) uint32 {
	return uint32(x*7+y*13+img*5) % 256
}

// DitherImages builds the two initial size×size grey images as word arrays.
func DitherImages(size int) [2][]uint32 {
	var out [2][]uint32
	for img := 0; img < 2; img++ {
		px := make([]uint32, size*size)
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				px[y*size+x] = ditherPixel(img, x, y)
			}
		}
		out[img] = px
	}
	return out
}

// DitherRef applies Floyd–Steinberg dithering to the image in place, with
// error diffusion confined to each core's horizontal segment. Arithmetic
// matches the R32 program exactly: 32-bit two's-complement adds and
// arithmetic right shifts for the (err·w)/16 terms.
func DitherRef(px []uint32, size, cores int) {
	rows := size / cores
	for c := 0; c < cores; c++ {
		y0, yEnd := c*rows, (c+1)*rows
		if c == cores-1 {
			yEnd = size
		}
		for y := y0; y < yEnd; y++ {
			for x := 0; x < size; x++ {
				i := y*size + x
				old := int32(px[i])
				var newPx int32
				if old >= 128 {
					newPx = 255
				}
				err := old - newPx
				px[i] = uint32(newPx)
				if x+1 < size {
					px[i+1] = uint32(int32(px[i+1]) + (err*7)>>4)
				}
				if y+1 < yEnd {
					below := i + size
					if x > 0 {
						px[below-1] = uint32(int32(px[below-1]) + (err*3)>>4)
					}
					px[below] = uint32(int32(px[below]) + (err*5)>>4)
					if x+1 < size {
						px[below+1] = uint32(int32(px[below+1]) + (err*1)>>4)
					}
				}
			}
		}
	}
}

// ditherProgram generates the per-core DITHERING assembly.
func ditherProgram(cores, size int) string {
	imgBytes := size * size * 4
	return fmt.Sprintf(`
	.equ SIZE,    %d
	.equ ROWB,    %d          ; SIZE*4
	.equ ROWS,    %d          ; rows per core
	.equ IMGB,    %d          ; bytes per image
	.equ IMG0,    0x10001000
	.equ INFO,    0x22000000

start:
	li   r20, INFO
	lw   r21, 0(r20)          ; coreID
	li   r1, SIZE
	li   r2, ROWB
	li   r15, 128
	li   r16, 255
	subi r14, r1, 1           ; SIZE-1

	add  r17, r0, r0          ; image index
imgloop:
	; base = IMG0 + r17*IMGB
	li   r5, IMGB
	mul  r5, r5, r17
	li   r6, IMG0
	add  r5, r5, r6           ; image base

	; y = coreID*ROWS ; yEnd = y + ROWS
	li   r6, ROWS
	mul  r7, r21, r6          ; y
	add  r18, r7, r6          ; yEnd
	subi r19, r18, 1          ; last row of segment

	; r9 = row address = base + y*ROWB
	mul  r9, r7, r2
	add  r9, r9, r5
yloop:
	add  r8, r0, r0           ; x
	mv   r10, r9              ; pixel cursor
xloop:
	lw   r11, 0(r10)          ; old
	add  r12, r0, r0          ; new = 0
	blt  r11, r15, dark
	mv   r12, r16             ; new = 255
dark:
	sub  r11, r11, r12        ; err
	sw   r12, 0(r10)

	; east: += err*7 >> 4
	beq  r8, r14, noeast
	slli r13, r11, 3
	sub  r13, r13, r11        ; err*7
	srai r13, r13, 4
	lw   r12, 4(r10)
	add  r12, r12, r13
	sw   r12, 4(r10)
noeast:
	; rows below only inside the segment
	beq  r7, r19, norow
	add  r13, r10, r2         ; below cursor
	; south-west: += err*3 >> 4
	beq  r8, r0, nosw
	slli r12, r11, 1
	add  r12, r12, r11        ; err*3
	srai r12, r12, 4
	lw   r22, -4(r13)
	add  r22, r22, r12
	sw   r22, -4(r13)
nosw:
	; south: += err*5 >> 4
	slli r12, r11, 2
	add  r12, r12, r11        ; err*5
	srai r12, r12, 4
	lw   r22, 0(r13)
	add  r22, r22, r12
	sw   r22, 0(r13)
	; south-east: += err*1 >> 4
	beq  r8, r14, norow
	srai r12, r11, 4
	lw   r22, 4(r13)
	add  r22, r22, r12
	sw   r22, 4(r13)
norow:
	addi r10, r10, 4
	inc  r8
	bne  r8, r1, xloop
	add  r9, r9, r2           ; next row
	inc  r7
	bne  r7, r18, yloop

	inc  r17
	addi r22, r0, 2
	bne  r17, r22, imgloop
	halt
`, size, size*4, size/cores, imgBytes)
}

// Dithering builds the DITHERING workload: Floyd–Steinberg on two
// size×size grey images in shared memory, one horizontal segment per core.
// size must be divisible by cores.
func Dithering(cores, size int) (*Spec, error) {
	if cores <= 0 || size <= 0 || size%cores != 0 {
		return nil, fmt.Errorf("workloads: size %d must divide evenly across %d cores", size, cores)
	}
	im, err := asm.Assemble(ditherProgram(cores, size))
	if err != nil {
		return nil, fmt.Errorf("workloads: dithering program: %w", err)
	}
	progs := make([]*asm.Image, cores)
	for i := range progs {
		progs[i] = im
	}
	imgs := DitherImages(size)
	imgBytes := uint32(size * size * 4)
	spec := &Spec{
		Name:     fmt.Sprintf("dithering-%dc-%dx%d", cores, size, size),
		Programs: progs,
		Shared: []SharedBlock{
			{Addr: ImageBase, Data: packWords(imgs[0])},
			{Addr: ImageBase + imgBytes, Data: packWords(imgs[1])},
		},
	}
	spec.Verify = func(read func(uint32) uint32) error {
		want := DitherImages(size)
		for img := 0; img < 2; img++ {
			DitherRef(want[img], size, cores)
			base := ImageBase + uint32(img)*imgBytes
			for i, w := range want[img] {
				if got := read(base + uint32(4*i)); got != w {
					return fmt.Errorf("dithering: image %d pixel %d = %#x, want %#x",
						img, i, got, w)
				}
			}
		}
		return nil
	}
	return spec, nil
}

// ---------------------------------------------------------------------------
// MEMBOUND
// ---------------------------------------------------------------------------

// StreamBase is the shared-memory offset of the MEMBOUND stream buffer.
const StreamBase = 0x4000

// streamWord is the deterministic initial value of stream element i.
func streamWord(i uint32) uint32 { return (i*2654435761 + 12345) & 0xFFFFFF }

// StreamSum returns the 32-bit wraparound sum of the stream buffer — the
// reference for one pass of the MEMBOUND inner loop.
func StreamSum(words int) uint32 {
	var sum uint32
	for i := uint32(0); i < uint32(words); i++ {
		sum += streamWord(i)
	}
	return sum
}

// memBoundProgram generates the per-core MEMBOUND driver: iters sequential
// read passes over a shared stream buffer. With the shared range uncached
// (the default platform configuration) every load pays the full
// interconnect + memory latency, so the cores spend most cycles stalled —
// the workload the skip-ahead kernel exists for, and the worst case for
// per-cycle stepping.
func memBoundProgram(words, iters int) string {
	return fmt.Sprintf(`
	.equ WORDS,  %d
	.equ ITERS,  %d
	.equ STREAM, %d           ; SharedBase + StreamBase
	.equ SHARED, 0x10000000
	.equ INFO,   0x22000000

start:
	li   r20, INFO
	lw   r21, 0(r20)          ; coreID
	li   r17, ITERS
	add  r10, r0, r0          ; sum
iter:
	li   r4, STREAM
	li   r2, WORDS
loop:
	lw   r6, 0(r4)
	add  r10, r10, r6
	addi r4, r4, 4
	dec  r2
	bne  r2, r0, loop
	dec  r17
	bne  r17, r0, iter

	; tag with the core id and publish at SHARED + 4*coreID
	add  r10, r10, r21
	li   r22, SHARED
	slli r23, r21, 2
	add  r22, r22, r23
	sw   r10, 0(r22)
	halt
`, words, iters, SharedBase+StreamBase)
}

// MemBound builds the MEMBOUND workload: every core streams `words` shared
// words `iters` times and publishes the tagged checksum. The stream buffer
// must fit under the platform's shared-memory size.
func MemBound(cores, words, iters int) (*Spec, error) {
	if cores <= 0 || words <= 0 || iters <= 0 {
		return nil, fmt.Errorf("workloads: cores, words and iters must be positive")
	}
	im, err := asm.Assemble(memBoundProgram(words, iters))
	if err != nil {
		return nil, fmt.Errorf("workloads: membound program: %w", err)
	}
	progs := make([]*asm.Image, cores)
	for i := range progs {
		progs[i] = im
	}
	stream := make([]byte, 4*words)
	for i := 0; i < words; i++ {
		binary.LittleEndian.PutUint32(stream[4*i:], streamWord(uint32(i)))
	}
	spec := &Spec{
		Name:     fmt.Sprintf("membound-%dc-%dw-%dit", cores, words, iters),
		Programs: progs,
		Shared:   []SharedBlock{{Addr: StreamBase, Data: stream}},
	}
	spec.Verify = func(read func(uint32) uint32) error {
		pass := StreamSum(words)
		for c := 0; c < cores; c++ {
			want := pass*uint32(iters) + uint32(c)
			if got := read(ChecksumBase + uint32(4*c)); got != want {
				return fmt.Errorf("membound: core %d checksum %#x, want %#x", c, got, want)
			}
		}
		return nil
	}
	return spec, nil
}

// ---------------------------------------------------------------------------
// LOCKS
// ---------------------------------------------------------------------------

// Shared-memory offsets of the LOCKS workload.
const (
	LockAddr    = 0x0800 // spinlock word
	CounterAddr = 0x0804 // protected counter
)

// locksProgram generates the LOCKS driver: every core increments a shared
// counter `iters` times under a swap-based spinlock. The workload stresses
// the atomic-exchange path and interconnect contention in a way MATRIX and
// DITHERING do not.
func locksProgram(iters int) string {
	return fmt.Sprintf(`
	.equ ITERS, %d
	.equ LOCK,    0x10000800
	.equ COUNTER, 0x10000804

start:
	li   r1, ITERS
	li   r2, LOCK
	li   r3, COUNTER
loop:
	; acquire: swap 1 into the lock until the old value was 0
acquire:
	addi r4, r0, 1
	swap r4, 0(r2)
	bne  r4, r0, acquire
	; critical section
	lw   r5, 0(r3)
	addi r5, r5, 1
	sw   r5, 0(r3)
	; release
	sw   r0, 0(r2)
	dec  r1
	bne  r1, r0, loop
	halt
`, iters)
}

// Locks builds the LOCKS workload for the given core count.
func Locks(cores, iters int) (*Spec, error) {
	if cores <= 0 || iters <= 0 {
		return nil, fmt.Errorf("workloads: cores and iters must be positive")
	}
	im, err := asm.Assemble(locksProgram(iters))
	if err != nil {
		return nil, fmt.Errorf("workloads: locks program: %w", err)
	}
	progs := make([]*asm.Image, cores)
	for i := range progs {
		progs[i] = im
	}
	spec := &Spec{Name: fmt.Sprintf("locks-%dc-%dit", cores, iters), Programs: progs}
	spec.Verify = func(read func(uint32) uint32) error {
		want := uint32(cores * iters)
		if got := read(CounterAddr); got != want {
			return fmt.Errorf("locks: counter = %d, want %d (lost updates)", got, want)
		}
		if lock := read(LockAddr); lock != 0 {
			return fmt.Errorf("locks: lock left held (%d)", lock)
		}
		return nil
	}
	return spec, nil
}
