package workloads

import (
	"strings"
	"testing"

	"thermemu/internal/emu"
)

// load installs a workload spec onto a platform.
func load(t *testing.T, p *emu.Platform, s *Spec) {
	t.Helper()
	if len(s.Programs) != len(p.Cores) {
		t.Fatalf("spec has %d programs for %d cores", len(s.Programs), len(p.Cores))
	}
	for i, im := range s.Programs {
		if err := p.LoadProgram(i, im); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range s.Shared {
		p.WriteShared(b.Addr, b.Data)
	}
}

// runToCompletion executes and verifies a workload.
func runToCompletion(t *testing.T, cfg emu.Config, s *Spec, maxCycles uint64) *emu.Platform {
	t.Helper()
	p := emu.MustNew(cfg)
	load(t, p, s)
	cycles, done := p.Run(maxCycles)
	if err := p.Fault(); err != nil {
		t.Fatalf("platform fault after %d cycles: %v", cycles, err)
	}
	if !done {
		t.Fatalf("workload %s did not finish in %d cycles", s.Name, maxCycles)
	}
	if err := s.Verify(p.ReadSharedWord); err != nil {
		t.Fatalf("verification failed after %d cycles: %v", cycles, err)
	}
	return p
}

func TestMatrixSingleCore(t *testing.T) {
	s, err := Matrix(1, 8, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, emu.DefaultConfig(1), s, 5_000_000)
}

func TestMatrixFourCores(t *testing.T) {
	s, err := Matrix(4, 8, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	p := runToCompletion(t, emu.DefaultConfig(4), s, 20_000_000)
	// Every core did real work.
	for i, c := range p.Cores {
		if c.Stats().Instructions < 1000 {
			t.Errorf("core %d executed only %d instructions", i, c.Stats().Instructions)
		}
	}
	// The barrier fired exactly once.
	if g := p.Barrier.Generation(); g != 1 {
		t.Errorf("barrier generation = %d", g)
	}
}

func TestMatrixEightCoresOnNoC(t *testing.T) {
	cfg := emu.DefaultConfig(8)
	cfg.IC = emu.ICNoC
	cfg.NoC = emu.Table3NoC(8)
	s, err := Matrix(8, 8, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	p := runToCompletion(t, cfg, s, 40_000_000)
	if p.Net.Stats().Packets == 0 {
		t.Error("no NoC traffic recorded")
	}
}

func TestMatrixChecksumsDifferPerCore(t *testing.T) {
	// The initial pattern depends on the core id, so checksums differ.
	if MatrixChecksum(0, 8) == MatrixChecksum(1, 8) {
		t.Error("core 0 and 1 produced identical checksums")
	}
	// But the checksum is deterministic.
	if MatrixChecksum(2, 8) != MatrixChecksum(2, 8) {
		t.Error("checksum not deterministic")
	}
}

func TestMatrixRejectsOversizedMatrices(t *testing.T) {
	if _, err := Matrix(1, 128, 1, 32); err == nil {
		t.Error("128x128 matrices in 32 KB accepted")
	}
	if _, err := Matrix(0, 8, 1, 64); err == nil {
		t.Error("zero cores accepted")
	}
}

func TestMatrixTMName(t *testing.T) {
	s, err := MatrixTM(4, 8, 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.Name, "matrix-tm") {
		t.Errorf("name = %s", s.Name)
	}
}

func TestDitheringSingleCore(t *testing.T) {
	s, err := Dithering(1, 16)
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, emu.DefaultConfig(1), s, 20_000_000)
}

func TestDitheringFourCoresBus(t *testing.T) {
	s, err := Dithering(4, 32)
	if err != nil {
		t.Fatal(err)
	}
	p := runToCompletion(t, emu.DefaultConfig(4), s, 100_000_000)
	// The bus carried the image traffic.
	if p.Bus.Stats().Transactions == 0 {
		t.Error("no bus transactions")
	}
}

func TestDitheringFourCoresNoC(t *testing.T) {
	cfg := emu.DefaultConfig(4)
	cfg.IC = emu.ICNoC
	cfg.NoC = emu.Table3NoC(4)
	s, err := Dithering(4, 32)
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, cfg, s, 100_000_000)
}

func TestDitheringRejectsUnevenSplit(t *testing.T) {
	if _, err := Dithering(3, 16); err == nil {
		t.Error("16 rows across 3 cores accepted")
	}
}

func TestDitherRefActuallyDithers(t *testing.T) {
	imgs := DitherImages(16)
	ref := append([]uint32(nil), imgs[0]...)
	DitherRef(imgs[0], 16, 1)
	// Every pixel is now 0 or 255.
	changed := false
	for i, px := range imgs[0] {
		if px != 0 && px != 255 {
			t.Fatalf("pixel %d = %d not binary", i, px)
		}
		if px != ref[i] {
			changed = true
		}
	}
	if !changed {
		t.Error("dithering changed nothing")
	}
	// Average intensity approximately preserved (error diffusion).
	var sumIn, sumOut int64
	for i := range ref {
		sumIn += int64(ref[i])
		sumOut += int64(imgs[0][i])
	}
	ratio := float64(sumOut) / float64(sumIn)
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("intensity ratio %v outside tolerance", ratio)
	}
}

func TestDitherSegmentIndependence(t *testing.T) {
	// Dithering with 4 segments equals dithering each quarter separately.
	whole := DitherImages(16)[0]
	DitherRef(whole, 16, 4)
	parts := DitherImages(16)[0]
	for c := 0; c < 4; c++ {
		seg := append([]uint32(nil), parts...)
		_ = seg
	}
	again := DitherImages(16)[0]
	DitherRef(again, 16, 4)
	for i := range whole {
		if whole[i] != again[i] {
			t.Fatal("reference not deterministic")
		}
	}
}

func TestCacheActivityDuringMatrix(t *testing.T) {
	s, err := Matrix(2, 8, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	p := runToCompletion(t, emu.DefaultConfig(2), s, 10_000_000)
	snap := p.Snapshot()
	for i := 0; i < 2; i++ {
		if snap.ICaches[i].Accesses() == 0 {
			t.Errorf("icache %d saw no traffic", i)
		}
		if snap.DCaches[i].Accesses() == 0 {
			t.Errorf("dcache %d saw no traffic", i)
		}
		// Private-memory matmul should hit well in a 4 KB D-cache.
		if mr := snap.DCaches[i].MissRate(); mr > 0.5 {
			t.Errorf("dcache %d miss rate %.2f implausibly high", i, mr)
		}
	}
}

func TestUncachedConfigurationStillCorrect(t *testing.T) {
	cfg := emu.DefaultConfig(2)
	cfg.ICache, cfg.DCache = nil, nil
	s, err := Matrix(2, 4, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, cfg, s, 20_000_000)
}

func TestLocksSingleCore(t *testing.T) {
	s, err := Locks(1, 50)
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, emu.DefaultConfig(1), s, 5_000_000)
}

func TestLocksFourCoresMutualExclusion(t *testing.T) {
	s, err := Locks(4, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential kernel: interleaved per-cycle stepping still serialises
	// the critical sections only if the swap is genuinely atomic.
	runToCompletion(t, emu.DefaultConfig(4), s, 50_000_000)
}

func TestLocksOnNoC(t *testing.T) {
	cfg := emu.DefaultConfig(4)
	cfg.IC = emu.ICNoC
	cfg.NoC = emu.Table3NoC(4)
	s, err := Locks(4, 25)
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, cfg, s, 50_000_000)
}

func TestLocksParallelMode(t *testing.T) {
	// The hardest correctness test for parallel mode: real host-thread
	// concurrency over the atomic-swap path must not lose any update.
	cfg := emu.DefaultConfig(4)
	cfg.Parallel = true
	s, err := Locks(4, 60)
	if err != nil {
		t.Fatal(err)
	}
	p := emu.MustNew(cfg)
	load(t, p, s)
	if _, done := p.RunParallel(128, 100_000_000); !done {
		t.Fatalf("did not finish (fault: %v)", p.Fault())
	}
	if err := s.Verify(p.ReadSharedWord); err != nil {
		t.Fatal(err)
	}
}

func TestMemBoundSingleCore(t *testing.T) {
	s, err := MemBound(1, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := runToCompletion(t, emu.DefaultConfig(1), s, 5_000_000)
	// Uncached shared streaming must be stall-dominated — the property the
	// skip-ahead kernel exploits.
	st := p.Cores[0].Stats()
	if st.StallCycles < st.ActiveCycles {
		t.Errorf("membound not stall-heavy: %d stall vs %d active cycles",
			st.StallCycles, st.ActiveCycles)
	}
}

func TestMemBoundFourCoresBus(t *testing.T) {
	s, err := MemBound(4, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := runToCompletion(t, emu.DefaultConfig(4), s, 20_000_000)
	if p.Bus.Stats().Transactions == 0 {
		t.Error("no bus transactions")
	}
}

func TestMemBoundOnNoC(t *testing.T) {
	cfg := emu.DefaultConfig(4)
	cfg.IC = emu.ICNoC
	cfg.NoC = emu.Table3NoC(4)
	s, err := MemBound(4, 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	runToCompletion(t, cfg, s, 20_000_000)
}

func TestMemBoundRejectsBadParams(t *testing.T) {
	if _, err := MemBound(0, 64, 1); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := MemBound(1, 0, 1); err == nil {
		t.Error("zero words accepted")
	}
	if _, err := MemBound(1, 64, 0); err == nil {
		t.Error("zero iters accepted")
	}
}

func TestLocksRejectsBadParams(t *testing.T) {
	if _, err := Locks(0, 10); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := Locks(2, 0); err == nil {
		t.Error("zero iters accepted")
	}
}
