// Package thermemu is a software reproduction of the fast HW/SW FPGA-based
// thermal emulation framework for MPSoCs of Atienza et al. (DAC 2006).
//
// The framework couples a cycle-level MPSoC emulator (standing in for the
// FPGA: R32 RISC cores, configurable caches and memories, bus or NoC
// interconnects, HW statistics sniffers and the VPCM virtual clock) with a
// SW thermal library (an RC network with non-linear silicon conductivity)
// over the paper's Ethernet MAC-frame protocol, closing the loop through
// run-time thermal-management policies such as threshold DFS.
//
// Quick start:
//
//	spec, _ := thermemu.Matrix(4, 16, 1)
//	res, _ := thermemu.RunWorkload(thermemu.DefaultPlatform(4), spec)
//	fmt.Println(res)
//
// Closed-loop thermal co-emulation:
//
//	cfg, _ := thermemu.Fig6(1000, true) // Matrix-TM with threshold DFS
//	out, _ := thermemu.RunCoEmulation(cfg, nil)
//	fmt.Printf("max %.1f K after %d DFS events\n", out.MaxTempK, out.DFSEvents)
//
// The exported types are aliases of the implementation packages, so the
// whole configuration surface (platform, floorplans, thermal properties,
// policies, transports) is available through this single import.
package thermemu

import (
	"fmt"
	"time"

	"thermemu/internal/checkpoint"
	"thermemu/internal/core"
	"thermemu/internal/emu"
	"thermemu/internal/etherlink"
	"thermemu/internal/floorplan"
	"thermemu/internal/golden"
	"thermemu/internal/mparm"
	"thermemu/internal/scenario"
	"thermemu/internal/thermal"
	"thermemu/internal/tm"
	"thermemu/internal/workloads"
)

// Re-exported configuration and result types.
type (
	// PlatformConfig configures the emulated MPSoC (cores, caches,
	// memories, interconnect, clocks).
	PlatformConfig = emu.Config
	// Platform is one instantiated MPSoC emulation.
	Platform = emu.Platform
	// Workload is a loadable program set with its verifier.
	Workload = workloads.Spec
	// CoEmulationConfig configures a closed-loop thermal run.
	CoEmulationConfig = core.Config
	// CoEmulationResult is the outcome of a closed-loop run.
	CoEmulationResult = core.Result
	// Sample is one sampling-window observation of the closed loop.
	Sample = core.Sample
	// ThermalHost is the host-PC side thermal service.
	ThermalHost = core.ThermalHost
	// Floorplan is a placed die.
	Floorplan = floorplan.Floorplan
	// Transport moves framework MAC frames between device and host.
	Transport = etherlink.Transport
	// ThermalOptions configures the RC thermal model (mesh depth, material
	// properties, and the Workers solver-sharding knob).
	ThermalOptions = thermal.Options
	// LinkStats aggregates atomic link-layer counters (shareable across
	// endpoints); LinkSnapshot is its JSON-encodable point-in-time copy.
	LinkStats    = etherlink.LinkStats
	LinkSnapshot = etherlink.LinkSnapshot
	// LinkFaultConfig describes per-direction link impairments (drops,
	// duplicates, reordering, corruption, latency, mid-stream cuts).
	LinkFaultConfig = etherlink.FaultConfig
	// LinkReliability tunes the NACK/resend-window loss-recovery protocol.
	LinkReliability = etherlink.ReliableConfig
	// LinkSupervisorConfig tunes the device-side reconnecting transport.
	LinkSupervisorConfig = etherlink.SupervisorConfig
	// ServeOptions tunes one ThermalHost.Serve session (shared metrics,
	// idle budget, reliability).
	ServeOptions = core.ServeOptions
	// GoldenTrace is a streaming conformance digest over emulation state;
	// two runs with equal digests executed the same emulation bit for bit.
	GoldenTrace = golden.Trace
	// GoldenDivergence localises the first difference between two journaled
	// golden traces (cycle, core, field, both values).
	GoldenDivergence = golden.Divergence
	// Checkpoint is a versioned full-state snapshot of a run at a sampling
	// window boundary: platform architectural state, thermal/policy loop
	// state and golden digest lineage, with an embedded state digest that
	// rejects corrupt or mismatched snapshots at load time. Produce them
	// with CoEmulationConfig.CheckpointSink, consume with
	// CoEmulationConfig.Resume (or Fork).
	Checkpoint = checkpoint.Checkpoint
	// CheckpointStore is an ordered in-memory checkpoint collection, the
	// replay debugger's seek index.
	CheckpointStore = checkpoint.Store
	// Replayer rebuilds one side of a divergence investigation for
	// ReplayToDivergence.
	Replayer = checkpoint.Replayer
	// ReplayReport pins a divergence to its exact cycle with the differing
	// fields and both sides' full state dumps.
	ReplayReport = checkpoint.Report
	// Scenario is a declarative run description parsed from the versioned
	// scenario text format; its CoEmulation method yields the same
	// CoEmulationConfig the equivalent CLI flags would, bit for bit.
	Scenario = scenario.Scenario
)

// ErrNoConvergence is the sentinel wrapped by SteadyState errors when the
// relaxation exhausts its sweep budget; branch on it with errors.Is.
var ErrNoConvergence = thermal.ErrNoConvergence

// DefaultThermalOptions returns the Table 2 thermal model configuration
// (auto worker count: Workers 0 resolves to GOMAXPROCS).
func DefaultThermalOptions() ThermalOptions { return thermal.DefaultOptions() }

// DefaultPlatform returns the Table 3 exploration platform with the given
// core count (4 KB I/D caches, 16 KB private memories, 1 MB shared, OPB).
func DefaultPlatform(cores int) PlatformConfig { return emu.DefaultConfig(cores) }

// NoCPlatform returns DefaultPlatform with the Table 3 two-switch NoC in
// place of the bus.
func NoCPlatform(cores int) PlatformConfig {
	cfg := emu.DefaultConfig(cores)
	cfg.IC = emu.ICNoC
	cfg.NoC = emu.Table3NoC(cores)
	return cfg
}

// Matrix builds the MATRIX workload for the given core count: independent
// n×n integer matrix multiplications per core, combined in shared memory.
func Matrix(cores, n, iters int) (*Workload, error) {
	return workloads.Matrix(cores, n, iters, DefaultPlatform(cores).PrivKB)
}

// Dithering builds the DITHERING workload: Floyd–Steinberg dithering of two
// size×size grey images in shared memory, one segment per core.
func Dithering(cores, size int) (*Workload, error) {
	return workloads.Dithering(cores, size)
}

// LoadScenario reads, parses and lints a declarative scenario file.
func LoadScenario(path string) (*Scenario, error) { return scenario.Load(path) }

// Fig6 builds the Figure 6 closed-loop experiment configuration (Matrix-TM
// on the 500 MHz NoC platform, 28 thermal cells, optional threshold DFS).
func Fig6(iters int, withTM bool) (CoEmulationConfig, error) {
	return core.Fig6Config(iters, withTM)
}

// NewThermalHost grids a floorplan into about targetCells thermal cells and
// builds the RC model around it (Table 2 properties).
func NewThermalHost(fp *Floorplan, targetCells int) (*ThermalHost, error) {
	return core.NewThermalHost(fp, targetCells, thermal.DefaultOptions())
}

// NewThermalHostWith is NewThermalHost with explicit thermal options, e.g. to
// pin the solver worker count (opt.Workers) or the mesh depth.
func NewThermalHostWith(fp *Floorplan, targetCells int, opt ThermalOptions) (*ThermalHost, error) {
	return core.NewThermalHost(fp, targetCells, opt)
}

// FourARM7 and FourARM11 return the floorplans of Figure 4.
func FourARM7() *Floorplan { return floorplan.FourARM7() }

// FourARM11 returns floorplan (b) of Figure 4.
func FourARM11() *Floorplan { return floorplan.FourARM11() }

// ThresholdDFS returns the paper's 350 K/340 K, 500/100 MHz policy.
func ThresholdDFS() tm.Policy { return tm.NewThresholdDFS() }

// RunStats summarises a plain (non-thermal) emulation run.
type RunStats struct {
	Name         string
	Cycles       uint64
	Instructions uint64
	VirtualS     float64
	Wall         time.Duration
	Done         bool
	// SlowdownVsRT is wall time over emulated virtual time: how much
	// slower than real time the emulation ran.
	SlowdownVsRT float64
}

// String formats the run summary.
func (r RunStats) String() string {
	return fmt.Sprintf("%s: %d cycles (%d instr) in %v — %.3f s virtual, %.1fx real time",
		r.Name, r.Cycles, r.Instructions, r.Wall.Round(time.Microsecond), r.VirtualS, r.SlowdownVsRT)
}

func loadSpec(p *emu.Platform, spec *workloads.Spec) error {
	if len(spec.Programs) != len(p.Cores) {
		return fmt.Errorf("thermemu: workload %s has %d programs for %d cores",
			spec.Name, len(spec.Programs), len(p.Cores))
	}
	for i, im := range spec.Programs {
		if err := p.LoadProgram(i, im); err != nil {
			return err
		}
	}
	for _, b := range spec.Shared {
		p.WriteShared(b.Addr, b.Data)
	}
	return nil
}

// RunWorkload executes a workload on the fast emulation kernel and verifies
// its result.
func RunWorkload(cfg PlatformConfig, spec *Workload) (RunStats, error) {
	p, err := emu.New(cfg)
	if err != nil {
		return RunStats{}, err
	}
	if err := loadSpec(p, spec); err != nil {
		return RunStats{}, err
	}
	start := time.Now()
	cycles, done := p.Run(1 << 62)
	wall := time.Since(start)
	if err := p.Fault(); err != nil {
		return RunStats{}, err
	}
	if done && spec.Verify != nil {
		if err := spec.Verify(p.ReadSharedWord); err != nil {
			return RunStats{}, err
		}
	}
	return newRunStats("emulator/"+spec.Name, p, cycles, wall, done), nil
}

// RunWorkloadParallel is RunWorkload with the platform built for parallel
// mode and stepped on concurrent host threads in deterministic epochs of
// `chunk` cycles (0 = default). This is the software analogue of the FPGA's
// spatial parallelism: on a multi-core host, wall time stays nearly flat as
// emulated cores are added. The kernel is deterministic by construction —
// shared-path accesses commit in (cycle, coreID) order, so cycle counts,
// statistics and architectural state are bit-identical to the serial
// RunWorkload, at any chunk size, run after run (assert it with
// RunWorkloadGolden / RunWorkloadParallelGolden and CompareGolden).
func RunWorkloadParallel(cfg PlatformConfig, spec *Workload, chunk uint64) (RunStats, error) {
	cfg.Parallel = true
	cfg.EventLogging = false
	p, err := emu.New(cfg)
	if err != nil {
		return RunStats{}, err
	}
	if err := loadSpec(p, spec); err != nil {
		return RunStats{}, err
	}
	start := time.Now()
	cycles, done := p.RunParallel(chunk, 1<<62)
	wall := time.Since(start)
	if err := p.Fault(); err != nil {
		return RunStats{}, err
	}
	if done && spec.Verify != nil {
		if err := spec.Verify(p.ReadSharedWord); err != nil {
			return RunStats{}, err
		}
	}
	return newRunStats("emulator-par/"+spec.Name, p, cycles, wall, done), nil
}

// NewGoldenTrace returns a streaming digest-only golden trace (constant
// memory; CompareGolden can tell two such traces apart but not localise the
// divergence).
func NewGoldenTrace() *GoldenTrace { return golden.New() }

// NewGoldenJournal returns a golden trace that additionally journals every
// record, so CompareGolden reports the first divergent cycle, core and field.
func NewGoldenJournal() *GoldenTrace { return golden.NewJournal() }

// CompareGolden returns nil when two golden traces digest the same emulation,
// otherwise a divergence report (localised when both traces are journals).
func CompareGolden(a, b *GoldenTrace) *GoldenDivergence { return golden.Compare(a, b) }

// ReadCheckpoint loads and verifies a checkpoint file written by a
// CheckpointSink (e.g. Checkpoint.WriteFile): the strict decoder rejects
// truncated, corrupted or trailing-garbage streams.
func ReadCheckpoint(path string) (*Checkpoint, error) { return checkpoint.ReadFile(path) }

// ReplayToDivergence lockstep-replays two sides from their nearest common
// checkpoint with the per-cycle reference kernel and reports the exact
// cycle, core and fields where their architectural state first disagrees.
// hintCycle usually comes from ReplayHint on a golden divergence.
func ReplayToDivergence(a, b *Replayer, hintCycle uint64) (*ReplayReport, error) {
	return checkpoint.ReplayToDivergence(a, b, hintCycle)
}

// ReplayHint extracts the replay target cycle from a golden divergence.
func ReplayHint(d *GoldenDivergence) (uint64, bool) { return checkpoint.HintFromDivergence(d) }

// RunWorkloadGolden is RunWorkload with conformance sampling: a statistics
// snapshot is folded into tr every `every` cycles plus the platform's full
// architectural state at the end. Traces from equal (workload, platform,
// every) runs — serial or parallel, any chunk size — must compare equal.
func RunWorkloadGolden(cfg PlatformConfig, spec *Workload, every uint64, tr *GoldenTrace) (RunStats, error) {
	p, err := emu.New(cfg)
	if err != nil {
		return RunStats{}, err
	}
	if err := loadSpec(p, spec); err != nil {
		return RunStats{}, err
	}
	start := time.Now()
	cycles, done := p.RunDigest(1<<62, every, tr)
	wall := time.Since(start)
	if err := p.Fault(); err != nil {
		return RunStats{}, err
	}
	if done && spec.Verify != nil {
		if err := spec.Verify(p.ReadSharedWord); err != nil {
			return RunStats{}, err
		}
	}
	return newRunStats("emulator/"+spec.Name, p, cycles, wall, done), nil
}

// RunWorkloadParallelGolden is RunWorkloadParallel with conformance sampling
// at the same boundaries as RunWorkloadGolden, so the two traces are directly
// comparable: equal digests prove the parallel kernel reproduced the serial
// run bit for bit.
func RunWorkloadParallelGolden(cfg PlatformConfig, spec *Workload, chunk, every uint64, tr *GoldenTrace) (RunStats, error) {
	cfg.Parallel = true
	cfg.EventLogging = false
	p, err := emu.New(cfg)
	if err != nil {
		return RunStats{}, err
	}
	if err := loadSpec(p, spec); err != nil {
		return RunStats{}, err
	}
	start := time.Now()
	cycles, done := p.RunParallelDigest(chunk, 1<<62, every, tr)
	wall := time.Since(start)
	if err := p.Fault(); err != nil {
		return RunStats{}, err
	}
	if done && spec.Verify != nil {
		if err := spec.Verify(p.ReadSharedWord); err != nil {
			return RunStats{}, err
		}
	}
	return newRunStats("emulator-par/"+spec.Name, p, cycles, wall, done), nil
}

// RunWorkloadMPARM executes a workload on the signal-level cycle-accurate
// baseline kernel (the MPARM stand-in) and verifies both the result and the
// statistics recovered from the signal traffic.
func RunWorkloadMPARM(cfg PlatformConfig, spec *Workload) (RunStats, error) {
	p, err := emu.New(cfg)
	if err != nil {
		return RunStats{}, err
	}
	if err := loadSpec(p, spec); err != nil {
		return RunStats{}, err
	}
	k := mparm.New(p)
	start := time.Now()
	cycles, done := k.Run(1 << 62)
	wall := time.Since(start)
	if err := p.Fault(); err != nil {
		return RunStats{}, err
	}
	if done && spec.Verify != nil {
		if err := spec.Verify(p.ReadSharedWord); err != nil {
			return RunStats{}, err
		}
	}
	if err := k.VerifyObserved(); err != nil {
		return RunStats{}, err
	}
	return newRunStats("mparm/"+spec.Name, p, cycles, wall, done), nil
}

func newRunStats(name string, p *emu.Platform, cycles uint64, wall time.Duration, done bool) RunStats {
	rs := RunStats{
		Name:         name,
		Cycles:       cycles,
		Instructions: p.TotalInstructions(),
		VirtualS:     p.VPCM.Time(),
		Wall:         wall,
		Done:         done,
	}
	if rs.VirtualS > 0 {
		rs.SlowdownVsRT = wall.Seconds() / rs.VirtualS
	}
	return rs
}

// RunCoEmulation executes the closed HW/SW loop of the framework.
func RunCoEmulation(cfg CoEmulationConfig, onSample func(Sample)) (*CoEmulationResult, error) {
	return core.Run(cfg, onSample)
}

// RunCoEmulationPipelined is RunCoEmulation with a software pipeline of the
// given depth: window N+1 emulates while window N's statistics are
// dispatched and solved, trading a sensor latency of depth windows for
// overlap (see CoEmulationConfig.PipelineDepth for the determinism
// contract). depth 0 is the serial loop.
func RunCoEmulationPipelined(cfg CoEmulationConfig, depth int, onSample func(Sample)) (*CoEmulationResult, error) {
	cfg.PipelineDepth = depth
	return core.Run(cfg, onSample)
}

// DialThermalHost connects the device side to a remote thermal server
// (cmd/thermserver) over TCP.
func DialThermalHost(addr string) (Transport, error) {
	return etherlink.Dial(addr, 64)
}

// LoopbackLink returns a connected in-process device/host transport pair
// whose FIFO holds depth frames per direction.
func LoopbackLink(depth int) (device, host Transport) {
	return etherlink.LoopbackPair(depth)
}

// DialThermalHostSupervised is DialThermalHost with a connection
// supervisor: link faults trigger reconnection with capped exponential
// backoff plus jitter, and Close emits a graceful CtrlStop.
func DialThermalHostSupervised(cfg LinkSupervisorConfig) (Transport, error) {
	cfg.GracefulStop = true
	return etherlink.DialSupervised(cfg)
}

// WithLinkFaults wraps a transport with seeded per-direction fault
// injection, for testing protocol invariants under loss.
func WithLinkFaults(tr Transport, seed int64, send, recv LinkFaultConfig) Transport {
	return etherlink.NewFaultTransport(tr, seed, send, recv)
}

// ParseLinkFaultSpec parses a comma-separated impairment spec such as
// "drop=0.01,dup=0.005,delay=2ms" into a LinkFaultConfig.
func ParseLinkFaultSpec(spec string) (LinkFaultConfig, error) {
	return etherlink.ParseFaultSpec(spec)
}
