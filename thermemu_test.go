package thermemu

import (
	"strings"
	"testing"
)

func TestRunWorkloadAndBaselineAgree(t *testing.T) {
	spec, err := Matrix(2, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := RunWorkload(DefaultPlatform(2), spec)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := RunWorkloadMPARM(DefaultPlatform(2), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !fast.Done || !slow.Done {
		t.Fatal("runs incomplete")
	}
	if fast.Cycles != slow.Cycles {
		t.Errorf("cycle counts differ: %d vs %d", fast.Cycles, slow.Cycles)
	}
	if fast.Instructions != slow.Instructions {
		t.Errorf("instruction counts differ: %d vs %d", fast.Instructions, slow.Instructions)
	}
	if !strings.Contains(fast.String(), "cycles") {
		t.Errorf("RunStats.String = %q", fast.String())
	}
}

func TestRunWorkloadParallelVerifies(t *testing.T) {
	spec, err := Matrix(4, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RunWorkloadParallel(DefaultPlatform(4), spec, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Done {
		t.Fatal("parallel run incomplete")
	}
	if rs.Instructions == 0 {
		t.Error("no instructions executed")
	}
}

func TestRunWorkloadGoldenSerialParallelAgree(t *testing.T) {
	spec, err := Matrix(4, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	serial := NewGoldenJournal()
	if _, err := RunWorkloadGolden(DefaultPlatform(4), spec, 256, serial); err != nil {
		t.Fatal(err)
	}
	par := NewGoldenJournal()
	if _, err := RunWorkloadParallelGolden(DefaultPlatform(4), spec, 64, 256, par); err != nil {
		t.Fatal(err)
	}
	if d := CompareGolden(serial, par); d != nil {
		t.Fatalf("serial and parallel facade runs diverge: %s", d)
	}
	if serial.Hex() != par.Hex() || serial.Len() == 0 {
		t.Fatalf("digests: serial %s (%d records) vs parallel %s (%d records)",
			serial.Hex(), serial.Len(), par.Hex(), par.Len())
	}
}

func TestCoEmulationGoldenReproducible(t *testing.T) {
	run := func() *GoldenTrace {
		cfg, err := Fig6(2, true)
		if err != nil {
			t.Fatal(err)
		}
		cfg.ThermalTimeScale = 100
		cfg.Golden = NewGoldenTrace()
		if _, err := RunCoEmulation(cfg, nil); err != nil {
			t.Fatal(err)
		}
		return cfg.Golden
	}
	a, b := run(), run()
	if d := CompareGolden(a, b); d != nil {
		t.Fatalf("repeated co-emulation runs diverge: %s", d)
	}
	if a.Len() == 0 {
		t.Fatal("co-emulation recorded no golden records")
	}
}

func TestTable1ContainsPaperRows(t *testing.T) {
	out := Table1()
	for _, want := range []string{"RISC32-ARM7", "RISC32-ARM11", "DCache-8kB-2way",
		"ICache-8kB-DM", "Memory-32kB", "0.5", "1.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2ContainsPaperRows(t *testing.T) {
	out := Table2()
	for _, want := range []string{"150", "4/3", "350", "400", "1000", "20 K/W"} {
		if !strings.Contains(out, want) && !strings.Contains(out, "1.333") {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "1.628e+06") {
		t.Errorf("Table 2 missing silicon specific heat:\n%s", out)
	}
}

func TestTable3SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("table 3 comparison is slow")
	}
	rows, err := Table3(Table3Options{MatrixN: 6, MatrixIters: 1, DitherSize: 16, SkipTM: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 1 {
			t.Errorf("%s: emulator not faster than the baseline (%.2fx)", r.Name, r.Speedup)
		}
		if r.EmuMHz <= 0 || r.MPARMkHz <= 0 {
			t.Errorf("%s: missing frequency metrics", r.Name)
		}
		if !strings.Contains(r.String(), "paper:") {
			t.Errorf("row string lacks the paper reference: %s", r)
		}
	}
	// The baseline simulates in the 100 kHz class; the emulator in the
	// MHz class (the paper's framing of the two approaches).
	for _, r := range rows {
		if r.MPARMkHz > 2000 {
			t.Errorf("%s: baseline at %.0f kHz is implausibly fast for a CA simulator", r.Name, r.MPARMkHz)
		}
		if r.EmuMHz < 0.5 {
			t.Errorf("%s: emulator at %.2f MHz is below the MHz class", r.Name, r.EmuMHz)
		}
	}
}

func TestFig6SeriesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 6 run is slow")
	}
	d, err := Fig6Series(Fig6Options{Iters: 300})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.NoTM) == 0 || len(d.WithTM) == 0 {
		t.Fatal("empty series")
	}
	// Both runs heat well above ambient.
	if d.MaxNoTM < 320 {
		t.Errorf("no-TM run only reached %.1f K", d.MaxNoTM)
	}
	// Once the unmanaged run crosses the 350 K threshold, the policy must
	// have engaged and kept the managed peak below the unmanaged one.
	if d.MaxNoTM > 352 {
		if d.DFSEvents == 0 {
			t.Error("policy never engaged despite crossing the threshold")
		}
		if d.MaxWithTM >= d.MaxNoTM {
			t.Errorf("TM peak %.1f K not below unmanaged peak %.1f K", d.MaxWithTM, d.MaxNoTM)
		}
	}
	// CSV writer emits both series with a header.
	var sb strings.Builder
	if err := d.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "series,time_s,max_temp_k,freq_mhz,throttled") {
		t.Errorf("CSV header missing:\n%.100s", out)
	}
	if !strings.Contains(out, "no-tm,") || !strings.Contains(out, "with-tm,") {
		t.Error("CSV missing a series")
	}
}

func TestResourcesReproducesUtilisation(t *testing.T) {
	out, err := Resources()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"574", "XC2VP30", "paper: 66%", "paper: 80%", "paper: 70%"} {
		if !strings.Contains(out, want) {
			t.Errorf("resources output missing %q", want)
		}
	}
}

func TestSolverPerfBeatsRealTimeClaim(t *testing.T) {
	r, err := SolverPerf(660, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cells < 660 {
		t.Errorf("model has %d cells, want >= 660", r.Cells)
	}
	// The paper's claim is 2 s simulated in 1.65 s (1.2x). Requiring 0.5x
	// leaves ample headroom for slow CI machines while still catching a
	// performance collapse.
	if r.RealTimeX < 0.5 {
		t.Errorf("solver at %.2fx real time; the framework needs ~1x to close the loop", r.RealTimeX)
	}
	if !strings.Contains(r.String(), "660") && !strings.Contains(r.String(), "669") {
		t.Errorf("result string = %q", r.String())
	}
}

func TestFig6ConfigViaFacade(t *testing.T) {
	cfg, err := Fig6(5, true)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Policy == nil || cfg.Host == nil || cfg.Workload == nil {
		t.Error("incomplete Fig6 config")
	}
}

func TestLoopbackLinkFacade(t *testing.T) {
	dev, host := LoopbackLink(2)
	if err := dev.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	b, err := host.Recv()
	if err != nil || string(b) != "x" {
		t.Fatalf("recv %q %v", b, err)
	}
	dev.Close()
}

func TestFloorplanAccessors(t *testing.T) {
	if FourARM7().Name != "4xARM7" || FourARM11().Name != "4xARM11" {
		t.Error("floorplan names")
	}
	if ThresholdDFS().Name() == "" {
		t.Error("policy name")
	}
}
